(* D5-D8 domain-safety analysis (DESIGN.md §3.9).

   Unlike D1-D4, which are per-expression checks, domain safety is a
   whole-program property: a top-level Hashtbl is only a hazard if code
   transitively reachable from a [@icc.domain_entry] seed (the functions
   handed to [Domain.spawn] by the parallel-verify closure) touches it.
   So the pass runs in two stages over the same [.cmt] walk the driver
   already performs:

     [collect]   per compilation unit: an inventory of top-level mutable
                 state (D5 material), a per-binding summary of referenced
                 globals (reference-graph edges) and of hazardous use
                 sites (D6/D7/D8 material), plus the [@icc.domain_safe] /
                 [@icc.allow] annotations that may excuse them;
     [finalize]  once all units are in: resolve names across modules,
                 BFS the reference graph from the entry seeds, and emit
                 findings only for state actually reachable from the
                 parallel closure.  Annotation used/unused bookkeeping
                 happens here, after the verdicts are known.

   The rules:

     D5 [d5-mutable-global]  a top-level unsynchronized mutable binding
        (ref, Hashtbl, array, Buffer, lazy, mutable record, ...) in a
        module wired into the domain closure.
     D6 [d6-domain-escape]   an access to such a binding from a function
        reachable from an entry point.
     D7 [d7-unguarded-lazy]  forcing a shared lazy from reachable code
        (two domains can force concurrently).
     D8 [d8-nonatomic-rmw]   a read-modify-write ([incr], [x := !x + 1])
        of a shared ref in reachable code — lost updates.

   Escape hatches: [@@icc.domain_safe "justification"] on the state's
   declaration (confinement argument: every access is under a lock, or
   the cell is written before any spawn); or a [@icc.allow "d6-...: .."]
   at the use site or on the state's declaration.  State held in
   [Atomic.t], [Domain.DLS] (or the repo's [Icc_obs.Dls] / [Icc_obs.Lock]
   shims) and [Mutex.t] is recognized as synchronized by construction.

   Resolution is name-based over dune-normalized paths (Typeinfo), with
   candidate keys tried most-qualified first; unresolved names (locals,
   stdlib, out-of-scan modules) are silently ignored, so the pass is
   conservative in the direction of silence, and lexically-shadowed
   toplevel names may produce a spurious edge but never a wrong rule id. *)

open Typedtree

type allow = {
  al_rule : string;
  al_loc : Location.t;
  mutable al_used : bool;
}

type safety =
  | Unsync of string (* description of the mutable kind *)
  | Lazy_global
  | Synced of string (* "atomic" | "domain-local" | "lock" | "mutex" *)

type global = {
  g_key : string;
  g_loc : Location.t;
  g_safety : safety;
  g_annot : (Location.t * string) option; (* [@@icc.domain_safe just] *)
  mutable g_annot_used : bool;
  g_allows : allow list; (* allows on the declaration itself *)
  mutable g_reached : bool;
}

type use_sort = Read | Force | Rmw of string

type use = {
  u_cands : string list;
  u_loc : Location.t;
  u_sort : use_sort;
  u_allows : allow list; (* lexically active at the site, innermost first *)
}

type node = {
  n_key : string;
  n_entry : bool;
  mutable n_refs : string list list; (* reverse source order *)
  mutable n_uses : use list; (* reverse source order *)
}

type acc = {
  globals : (string, global) Hashtbl.t;
  nodes : (string, node) Hashtbl.t;
  mutable entries : string list; (* node keys, reverse source order *)
  mutable allows_seen : allow list; (* every domain-rule allow, reversed *)
}

let create () =
  {
    globals = Hashtbl.create 64;
    nodes = Hashtbl.create 256;
    entries = [];
    allows_seen = [];
  }

(* --- attributes --------------------------------------------------------- *)

let attr_domain_entry = "icc.domain_entry"
let attr_domain_safe = "icc.domain_safe"

let mem s l = List.exists (String.equal s) l

let has_attr name (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs

(* The domain-rule allows among [attrs].  Malformed [@icc.allow] payloads
   are already reported by the D1-D4 walk over the same tree; reporting
   them twice here would only duplicate findings, so parse silently. *)
let domain_allows acc (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (attr : Parsetree.attribute) ->
      if not (String.equal attr.attr_name.txt Allowlist.attribute_name) then
        None
      else
        match Allowlist.string_payload attr with
        | None -> None
        | Some s -> (
            match Allowlist.parse_payload s with
            | Ok rule when Diag.is_domain_rule rule ->
                let a =
                  { al_rule = rule; al_loc = attr.attr_loc; al_used = false }
                in
                acc.allows_seen <- a :: acc.allows_seen;
                Some a
            | Ok _ | Error _ -> None))
    attrs

(* [@@icc.domain_safe "justification"]: mandatory non-empty string. *)
let domain_safe_annot ~report (attrs : Parsetree.attributes) =
  List.fold_left
    (fun acc (attr : Parsetree.attribute) ->
      if not (String.equal attr.attr_name.txt attr_domain_safe) then acc
      else
        match Allowlist.string_payload attr with
        | Some s when not (String.equal (String.trim s) "") ->
            Some (attr.attr_loc, String.trim s)
        | _ ->
            report
              (Diag.of_location attr.attr_loc ~rule:Diag.rule_allow_bad
                 ~msg:
                   "[@icc.domain_safe] payload must be a string literal \
                    justification");
            acc)
    None attrs

(* --- name candidates ---------------------------------------------------- *)

let drop_last l = match List.rev l with [] -> [] | _ :: tl -> List.rev tl

(* A bare ident inside module path [modpath] may be a binding of that
   module or of any enclosing one; most-qualified candidate first. *)
let rec pident_candidates modpath name =
  match modpath with
  | [] -> []
  | _ ->
      (String.concat "." modpath ^ "." ^ name)
      :: pident_candidates (drop_last modpath) name

(* A dotted path may name a sibling submodule (qualify under each
   enclosing module), an absolute cross-library path, or a suffix of one
   (wrapped-library aliases make [Icc_obs.Registry.inc] and
   [Registry.inc] the same binding). *)
let rec qualified_under modpath full =
  match modpath with
  | [] -> [ full ]
  | _ ->
      (String.concat "." modpath ^ "." ^ full)
      :: qualified_under (drop_last modpath) full

let rec proper_suffixes = function
  | [] | [ _ ] | [ _; _ ] -> []
  | _ :: tl -> String.concat "." tl :: proper_suffixes tl

let skip_roots = [ "Stdlib"; "CamlinternalLazy"; "CamlinternalFormat" ]

let candidates ~modpath (p : Path.t) =
  match Typeinfo.path_components p with
  | [] -> []
  | [ name ] -> pident_candidates modpath name
  | root :: _ as comps ->
      if mem root skip_roots then []
      else qualified_under modpath (String.concat "." comps)
           @ proper_suffixes comps

(* --- binding classification --------------------------------------------- *)

let rec flatten (e : expression) =
  match e.exp_desc with
  | Texp_apply (fn, args) ->
      let head, inner = flatten fn in
      (head, inner @ args)
  | _ -> (e, [])

let ident_path (e : expression) =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

let tail2 comps =
  let rec go = function
    | [ a; b ] -> a ^ "." ^ b
    | [ a ] -> a
    | _ :: tl -> go tl
    | [] -> ""
  in
  go comps

let head_tail2 (e : expression) =
  match ident_path (fst (flatten e)) with
  | Some p -> Some (tail2 (Typeinfo.path_components p))
  | None -> None

(* Creator applications, matched on the last two normalized path
   components of the head.  [unsync_creators] build bare shared-mutable
   state; [sync_creators] build cells that are safe to share. *)
let unsync_creators =
  [
    ("Stdlib.ref", "ref"); ("Hashtbl.create", "Hashtbl");
    ("Array.make", "array"); ("Array.init", "array");
    ("Array.make_matrix", "array"); ("Array.of_list", "array");
    ("Array.copy", "array"); ("Buffer.create", "Buffer");
    ("Queue.create", "Queue"); ("Stack.create", "Stack");
    ("Bytes.create", "bytes"); ("Bytes.make", "bytes");
    ("Weak.create", "Weak");
  ]

let sync_creators =
  [
    ("Atomic.make", "atomic"); ("Mutex.create", "mutex");
    ("DLS.new_key", "domain-local"); ("Dls.new_key", "domain-local");
    ("Lock.create", "lock");
  ]

(* The *value* of a binding, past any bootstrap lets:
   [let t = let n = size () in Hashtbl.create n] declares a Hashtbl. *)
let rec peel_lets (e : expression) =
  match e.exp_desc with Texp_let (_, _, body) -> peel_lets body | _ -> e

let record_literal_mutable fields =
  Array.exists
    (fun ((ld : Types.label_description), _) ->
      match ld.lbl_mut with Asttypes.Mutable -> true | _ -> false)
    fields

let classify ~table (vb_expr : expression) : safety option =
  let e = peel_lets vb_expr in
  let by_type () =
    match Typeinfo.classify_mutable ~table e.exp_type with
    | Typeinfo.Shared_mutable d -> Some (Unsync d)
    | Typeinfo.Shared_lazy -> Some Lazy_global
    | Typeinfo.Unshared -> None
  in
  match e.exp_desc with
  | Texp_function _ -> None (* reference-graph node, not state *)
  | Texp_lazy _ -> Some Lazy_global
  | Texp_array _ -> Some (Unsync "array")
  | Texp_record { fields; _ } ->
      if record_literal_mutable fields then
        Some (Unsync "record with mutable fields")
      else None
  | Texp_apply _ -> (
      match head_tail2 e with
      | Some t2 -> (
          match List.assoc_opt t2 sync_creators with
          | Some d -> Some (Synced d)
          | None -> (
              match List.assoc_opt t2 unsync_creators with
              | Some d -> Some (Unsync d)
              | None -> by_type ()))
      | None -> by_type ())
  | _ -> by_type ()

let is_function (e : expression) =
  match (peel_lets e).exp_desc with Texp_function _ -> true | _ -> false

(* --- per-binding body walk ---------------------------------------------- *)

let loc_key (loc : Location.t) =
  ( loc.Location.loc_start.Lexing.pos_fname,
    loc.Location.loc_start.Lexing.pos_cnum,
    loc.Location.loc_end.Lexing.pos_cnum )

(* Does [e] contain [!p] for the given ref path (by normalized name)? *)
let contains_deref ~name (e : expression) =
  let found = ref false in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_apply (_, _) -> (
        let head, args = flatten e in
        match (head_tail2 head, args) with
        | Some "Stdlib.!", [ (_, Some a) ] -> (
            match ident_path a with
            | Some p when String.equal (Typeinfo.norm_path p) name ->
                found := true
            | _ -> ())
        | _ -> ())
    | _ -> ());
    if not !found then Tast_iterator.default_iterator.expr sub e
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  iter.expr iter e;
  !found

let exempt_derefs ~name ~exempt (e : expression) =
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_apply (_, _) -> (
        let head, args = flatten e in
        match (head_tail2 head, args) with
        | Some "Stdlib.!", [ (_, Some a) ] -> (
            match ident_path a with
            | Some p when String.equal (Typeinfo.norm_path p) name ->
                Hashtbl.replace exempt (loc_key a.exp_loc) ()
            | _ -> ())
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  iter.expr iter e

(* Walk one top-level binding body: record referenced globals (edges),
   and — inside function/lazy bodies only, i.e. code that runs at call
   time rather than module-initialization time — hazardous use sites. *)
let walk_binding acc ~modpath ~toplevel ~node ~vb_allows (body : expression) =
  let depth = ref 0 in
  let stack = ref [ vb_allows ] in
  let exempt : (string * int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let cands_of p =
    match Typeinfo.path_components p with
    | [ name ] ->
        if Hashtbl.mem toplevel name then pident_candidates modpath name else []
    | _ -> candidates ~modpath p
  in
  let record_use cs loc sort =
    node.n_uses <-
      { u_cands = cs; u_loc = loc; u_sort = sort;
        u_allows = List.concat !stack }
      :: node.n_uses
  in
  let arg_ident_cands a =
    match ident_path a with
    | Some p -> (
        match cands_of p with [] -> None | cs -> Some (p, cs))
    | None -> None
  in
  let expr sub (e : expression) =
    let allows = domain_allows acc e.exp_attributes in
    let pushed = (match allows with [] -> false | _ -> true) in
    if pushed then stack := allows :: !stack;
    (* Parent-first shape checks, so compound forms can claim (exempt)
       their constituent idents before the ident case sees them. *)
    (match e.exp_desc with
    | Texp_apply (_, _) -> (
        let head, args = flatten e in
        match (head_tail2 head, args) with
        | Some ("Stdlib.incr" as op), [ (_, Some a) ]
        | Some ("Stdlib.decr" as op), [ (_, Some a) ] -> (
            match arg_ident_cands a with
            | Some (_, cs) when !depth > 0 ->
                record_use cs e.exp_loc
                  (Rmw (Typeinfo.norm_component (tail2 [ op ])));
                Hashtbl.replace exempt (loc_key a.exp_loc) ()
            | _ -> ())
        | Some "Stdlib.:=", [ (_, Some lhs); (_, Some rhs) ] -> (
            match arg_ident_cands lhs with
            | Some (p, cs)
              when !depth > 0
                   && contains_deref ~name:(Typeinfo.norm_path p) rhs ->
                record_use cs e.exp_loc (Rmw ":= over !");
                Hashtbl.replace exempt (loc_key lhs.exp_loc) ();
                exempt_derefs ~name:(Typeinfo.norm_path p) ~exempt rhs
            | _ -> ())
        | Some ("Lazy.force" | "Lazy.force_val"), [ (_, Some a) ] -> (
            match arg_ident_cands a with
            | Some (_, cs) when !depth > 0 ->
                record_use cs a.exp_loc Force;
                Hashtbl.replace exempt (loc_key a.exp_loc) ()
            | _ -> ())
        | _ -> ())
    | Texp_ident (p, _, _) ->
        if not (Hashtbl.mem exempt (loc_key e.exp_loc)) then begin
          match cands_of p with
          | [] -> ()
          | cs ->
              node.n_refs <- cs :: node.n_refs;
              if !depth > 0 then record_use cs e.exp_loc Read
        end
    | _ -> ());
    (match e.exp_desc with
    | Texp_function _ | Texp_lazy _ ->
        incr depth;
        Tast_iterator.default_iterator.expr sub e;
        decr depth
    | _ -> Tast_iterator.default_iterator.expr sub e);
    if pushed then stack := List.tl !stack
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  iter.expr iter body

(* --- per-unit collection ------------------------------------------------ *)

(* "Stdlib.incr" -> "incr" for the D8 message. *)
let short_op s =
  match String.rindex_opt s '.' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

let collect acc ~table ~modname ~report (st : structure) =
  let modroot = Typeinfo.norm_component modname in
  (* Stage A: every structure-level name in this unit, so bare idents can
     be told apart from locals/parameters during the body walks. *)
  let toplevel = Hashtbl.create 32 in
  let rec names (items : structure_item list) =
    List.iter
      (fun (it : structure_item) ->
        match it.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                List.iter
                  (fun id -> Hashtbl.replace toplevel (Ident.name id) ())
                  (pat_bound_idents vb.vb_pat))
              vbs
        | Tstr_module mb -> names_mod mb.mb_expr
        | Tstr_recmodule mbs ->
            List.iter (fun mb -> names_mod mb.mb_expr) mbs
        | _ -> ())
      items
  and names_mod (me : module_expr) =
    match me.mod_desc with
    | Tmod_structure s -> names s.str_items
    | Tmod_constraint (me, _, _, _) -> names_mod me
    | _ -> ()
  in
  names st.str_items;
  (* Stage B: classify each binding and walk its body. *)
  let binding modpath (vb : value_binding) =
    match pat_bound_idents vb.vb_pat with
    | [ id ] ->
        let key = String.concat "." (modpath @ [ Ident.name id ]) in
        let entry_attr = has_attr attr_domain_entry vb.vb_attributes in
        let annot = domain_safe_annot ~report vb.vb_attributes in
        let vb_allows = domain_allows acc vb.vb_attributes in
        let fn = is_function vb.vb_expr in
        if entry_attr && not fn then
          report
            (Diag.of_location vb.vb_pat.pat_loc ~rule:Diag.rule_allow_bad
               ~msg:
                 "[@icc.domain_entry] must mark a function (the seed of \
                  the parallel closure)");
        let entry = entry_attr && fn in
        (match classify ~table vb.vb_expr with
        | Some safety ->
            Hashtbl.replace acc.globals key
              {
                g_key = key;
                g_loc = vb.vb_pat.pat_loc;
                g_safety = safety;
                g_annot = annot;
                g_annot_used = false;
                g_allows = vb_allows;
                g_reached = false;
              }
        | None -> (
            (* domain_safe on a binding with no shared mutable state is
               stale documentation — the same policy as unused allows. *)
            match annot with
            | Some (aloc, _) ->
                report
                  (Diag.of_location aloc ~rule:Diag.rule_allow_unused
                     ~msg:
                       "[@icc.domain_safe] annotates a binding with no \
                        shared mutable state — remove it")
            | None -> ()));
        let node =
          { n_key = key; n_entry = entry; n_refs = []; n_uses = [] }
        in
        Hashtbl.replace acc.nodes key node;
        if entry then acc.entries <- key :: acc.entries;
        walk_binding acc ~modpath ~toplevel ~node ~vb_allows vb.vb_expr
    | _ -> () (* destructuring toplevel bindings: out of scope *)
  in
  let rec items modpath (sitems : structure_item list) =
    List.iter
      (fun (it : structure_item) ->
        match it.str_desc with
        | Tstr_value (_, vbs) -> List.iter (binding modpath) vbs
        | Tstr_module mb -> sub modpath mb
        | Tstr_recmodule mbs -> List.iter (sub modpath) mbs
        | _ -> ())
      sitems
  and sub modpath (mb : module_binding) =
    match mb.mb_id with
    | Some id -> sub_expr (modpath @ [ Ident.name id ]) mb.mb_expr
    | None -> ()
  and sub_expr modpath (me : module_expr) =
    match me.mod_desc with
    | Tmod_structure s -> items modpath s.str_items
    | Tmod_constraint (me, _, _, _) -> sub_expr modpath me
    | _ -> ()
  in
  items [ modroot ] st.str_items

(* --- whole-program resolution ------------------------------------------- *)

let first_match find cands =
  let rec go = function
    | [] -> None
    | c :: rest -> ( match find c with Some v -> Some v | None -> go rest)
  in
  go cands

let top_module key =
  match String.index_opt key '.' with
  | Some i -> String.sub key 0 i
  | None -> key

let safety_desc = function
  | Unsync d -> d
  | Lazy_global -> "lazy"
  | Synced d -> d

let finalize acc ~report =
  let find_node cs = first_match (Hashtbl.find_opt acc.nodes) cs in
  let find_global cs = first_match (Hashtbl.find_opt acc.globals) cs in
  (* Reachability: BFS over resolved references from the entry seeds. *)
  let visited = Hashtbl.create 128 in
  let queue = Queue.create () in
  List.iter
    (fun k ->
      if not (Hashtbl.mem visited k) then begin
        Hashtbl.replace visited k ();
        Queue.add k queue
      end)
    (List.rev acc.entries);
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    match Hashtbl.find_opt acc.nodes k with
    | None -> ()
    | Some n ->
        List.iter
          (fun cs ->
            match find_node cs with
            | Some n' when not (Hashtbl.mem visited n'.n_key) ->
                Hashtbl.replace visited n'.n_key ();
                Queue.add n'.n_key queue
            | _ -> ())
          (List.rev n.n_refs)
  done;
  let permits allows rule =
    match List.find_opt (fun a -> String.equal a.al_rule rule) allows with
    | Some a ->
        a.al_used <- true;
        true
    | None -> false
  in
  (* Use sites in reachable code, visited in key order so allow-usage
     marking (and hence the unused-allow report) is deterministic. *)
  let visited_keys =
    List.sort String.compare (Hashtbl.fold (fun k () l -> k :: l) visited [])
  in
  List.iter
    (fun k ->
      match Hashtbl.find_opt acc.nodes k with
      | None -> ()
      | Some n ->
          List.iter
            (fun u ->
              match find_global u.u_cands with
              | None -> ()
              | Some g -> (
                  g.g_reached <- true;
                  match g.g_safety with
                  | Synced _ ->
                      if Option.is_some g.g_annot then g.g_annot_used <- true
                  | Unsync desc -> (
                      let rule, msg =
                        match u.u_sort with
                        | Rmw op ->
                            ( Diag.rule_nonatomic_rmw,
                              Printf.sprintf
                                "non-atomic read-modify-write (%s) of shared \
                                 %s %s — concurrent domains lose updates; \
                                 use Atomic.t (fetch_and_add) or a lock"
                                (short_op op) desc g.g_key )
                        | Force | Read ->
                            ( Diag.rule_domain_escape,
                              Printf.sprintf
                                "%s %s is reachable from the \
                                 [@icc.domain_entry] closure without \
                                 synchronization — use Atomic.t / \
                                 Icc_obs.Dls / Icc_obs.Lock, or justify \
                                 confinement with [@icc.domain_safe \"...\"]"
                                desc g.g_key )
                      in
                      match g.g_annot with
                      | Some _ -> g.g_annot_used <- true
                      | None ->
                          if
                            not
                              (permits u.u_allows rule
                              || permits g.g_allows rule)
                          then report (Diag.of_location u.u_loc ~rule ~msg))
                  | Lazy_global -> (
                      let rule = Diag.rule_unguarded_lazy in
                      let msg =
                        Printf.sprintf
                          "forcing shared lazy %s from the parallel closure \
                           can race (two domains forcing concurrently raise \
                           CamlinternalLazy.Undefined) — force it before \
                           Domain.spawn or guard it with Icc_obs.Lock"
                          g.g_key
                      in
                      match g.g_annot with
                      | Some _ -> g.g_annot_used <- true
                      | None ->
                          if
                            not
                              (permits u.u_allows rule
                              || permits g.g_allows rule)
                          then report (Diag.of_location u.u_loc ~rule ~msg))))
            (List.rev n.n_uses))
    visited_keys;
  (* D5: declaration-site findings.  A module is domain-sensitive when it
     hosts an entry point; individual globals also become sensitive when
     the reachability pass saw an access. *)
  let entry_roots =
    List.sort_uniq String.compare (List.map top_module acc.entries)
  in
  let global_keys =
    List.sort String.compare
      (Hashtbl.fold (fun k _ l -> k :: l) acc.globals [])
  in
  List.iter
    (fun k ->
      let g = Hashtbl.find acc.globals k in
      match g.g_safety with
      | Synced _ -> ()
      | Unsync _ | Lazy_global ->
          if mem (top_module g.g_key) entry_roots || g.g_reached then begin
            match g.g_annot with
            | Some _ -> g.g_annot_used <- true
            | None ->
                if not (permits g.g_allows Diag.rule_mutable_global) then
                  report
                    (Diag.of_location g.g_loc ~rule:Diag.rule_mutable_global
                       ~msg:
                         (Printf.sprintf
                            "top-level mutable state (%s) in a module wired \
                             into the [@icc.domain_entry] closure — use \
                             Atomic.t / Icc_obs.Dls / Icc_obs.Lock, or \
                             document confinement with [@icc.domain_safe \
                             \"...\"]"
                            (safety_desc g.g_safety)))
          end)
    global_keys;
  (* Unused escape hatches, in source order. *)
  List.iter
    (fun a ->
      if not a.al_used then
        report
          (Diag.of_location a.al_loc ~rule:Diag.rule_allow_unused
             ~msg:
               (Printf.sprintf "[@icc.allow %S] suppressed nothing — remove it"
                  a.al_rule)))
    (List.rev acc.allows_seen)

(* --- inventory ---------------------------------------------------------- *)

type inv = {
  i_name : string;
  i_kind : string;
  i_sync : string;
  i_file : string;
  i_line : int;
}

let inventory acc =
  let keys =
    List.sort String.compare
      (Hashtbl.fold (fun k _ l -> k :: l) acc.globals [])
  in
  List.map
    (fun k ->
      let g = Hashtbl.find acc.globals k in
      let sync =
        match (g.g_safety, g.g_annot) with
        | Synced d, _ -> d
        | (Unsync _ | Lazy_global), Some (_, just) -> "domain_safe: " ^ just
        | (Unsync _ | Lazy_global), None -> "unsynchronized"
      in
      let p = g.g_loc.Location.loc_start in
      {
        i_name = g.g_key;
        i_kind = safety_desc g.g_safety;
        i_sync = sync;
        i_file = p.Lexing.pos_fname;
        i_line = p.Lexing.pos_lnum;
      })
    keys
