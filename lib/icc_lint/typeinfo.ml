(* Cross-module type knowledge for the lint pass.

   The rules need to answer two questions about the type a polymorphic
   primitive is instantiated at:

     - does structural comparison of this type resolve to a single
       primitive atom (so [compare] / [=] are deterministic and fine)?
     - is this a protocol-owned type whose dedicated comparator must be
       used instead?

   Neither is answerable from one [.cmt] alone: [Types.party_id] is a
   transparent alias of [int] while [Sha256.t] is abstract, and both facts
   live in *other* compilation units.  So a first pass collects every type
   declaration from the build's [.cmti] files (falling back to [.cmt] when
   a module has no interface).  Using the *interface* view is deliberate:
   a type kept abstract in its [.mli] is one whose module exports a
   dedicated comparator, and outside code must not look through it — while
   inside the defining module the type is referenced by its local name,
   which never resolves through this table, so structural code there stays
   permitted. *)

type decl =
  | Alias of Types.type_expr (* manifest of a transparent nullary alias *)
  | Record
  | Variant_enum (* all constructors constant: tag compare is total *)
  | Variant_payload
  | Abstract
  | Open

(* [decls] answers the D1-D4 hazard questions; [muts] records which
   declared record types carry [mutable] fields, which the D5-D8 domain
   pass needs to spot shared mutable state hiding behind a nominal type
   (e.g. a [Registry.metric] record).  Mutability is recorded from both
   interface and implementation views: an .mli that keeps the type
   abstract hides the fields from *outside* code, but the state is no
   less mutable for it. *)
type table = {
  decls : (string, decl) Hashtbl.t;
  muts : (string, unit) Hashtbl.t;
}

(* --- name normalization ------------------------------------------------ *)

(* Dune-wrapped modules appear as ["Icc_core__Types"]; strip to the suffix
   after the last ["__"] so paths seen from inside the library, from other
   libraries and from declarations all converge on ["Types"]. *)
let norm_component s =
  let n = String.length s in
  let cut = ref 0 in
  for i = 0 to n - 2 do
    if s.[i] = '_' && s.[i + 1] = '_' && i + 2 < n then cut := i + 2
  done;
  if !cut = 0 then s else String.sub s !cut (n - !cut)

let path_components p =
  List.map norm_component (String.split_on_char '.' (Path.name p))

let norm_path p = String.concat "." (path_components p)

(* ["Module.type"] key for the declaration table: last module component
   (normalized) + type name.  A bare [Pident] (a type local to the module
   being linted) yields just the name and never matches the table. *)
let type_key p =
  let rec last2 = function
    | [ m; t ] -> m ^ "." ^ t
    | [ t ] -> t
    | _ :: tl -> last2 tl
    | [] -> ""
  in
  last2 (path_components p)

let module_of_key key =
  match String.index_opt key '.' with
  | Some i -> String.sub key 0 i
  | None -> ""

(* --- declaration collection -------------------------------------------- *)

let decl_of_kind ~manifest kind =
  match (kind : Typedtree.type_kind) with
  | Ttype_record _ -> Record
  | Ttype_open -> Open
  | Ttype_variant cds ->
      let constant (cd : Typedtree.constructor_declaration) =
        match cd.cd_args with Cstr_tuple [] -> true | _ -> false
      in
      if List.for_all constant cds then Variant_enum else Variant_payload
  | Ttype_abstract -> (
      match manifest with
      | Some (ct : Typedtree.core_type) -> Alias ct.ctyp_type
      | None -> Abstract)

let record_has_mutable_field (kind : Typedtree.type_kind) =
  match kind with
  | Ttype_record lds ->
      List.exists
        (fun (ld : Typedtree.label_declaration) ->
          match ld.ld_mutable with Asttypes.Mutable -> true | _ -> false)
        lds
  | _ -> false

let add_declaration table ~modname ~overwrite (td : Typedtree.type_declaration)
    =
  (* Parametric aliases would need substitution at use sites; treat them as
     opaque rather than resolve them wrongly. *)
  let manifest = if td.typ_params = [] then td.typ_manifest else None in
  let d =
    match (manifest, td.typ_kind) with
    | Some _, Ttype_abstract -> decl_of_kind ~manifest td.typ_kind
    | _, k -> decl_of_kind ~manifest:None k
  in
  let key = norm_component modname ^ "." ^ td.typ_name.txt in
  if record_has_mutable_field td.typ_kind then Hashtbl.replace table.muts key ();
  if overwrite || not (Hashtbl.mem table.decls key) then
    Hashtbl.replace table.decls key d

let collect_signature table ~modname ~overwrite (sg : Typedtree.signature) =
  List.iter
    (fun (item : Typedtree.signature_item) ->
      match item.sig_desc with
      | Tsig_type (_, tds) ->
          List.iter (add_declaration table ~modname ~overwrite) tds
      | _ -> ())
    sg.sig_items

let collect_structure table ~modname ~overwrite (st : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_type (_, tds) ->
          List.iter (add_declaration table ~modname ~overwrite) tds
      | _ -> ())
    st.str_items

let create () : table = { decls = Hashtbl.create 256; muts = Hashtbl.create 32 }

(* [overwrite] distinguishes interface entries (authoritative) from
   implementation fallbacks. *)
let add_cmt table (cmt : Cmt_format.cmt_infos) =
  let modname = cmt.cmt_modname in
  match cmt.cmt_annots with
  | Interface sg -> collect_signature table ~modname ~overwrite:true sg
  | Implementation st -> collect_structure table ~modname ~overwrite:false st
  | _ -> ()

(* --- classification ----------------------------------------------------- *)

(* Primitive atoms whose structural compare/equality is total, cheap and
   deterministic. *)
let atom_names =
  [ "int"; "char"; "bool"; "string"; "bytes"; "unit"; "int32"; "int64";
    "nativeint" ]

(* Containers we look through: structural ops recurse into the element. *)
let container_names =
  [ "list"; "option"; "array"; "ref"; "Stdlib.ref"; "Stdlib.result";
    "result"; "Seq.t"; "Stdlib.Seq.t" ]

(* Mutable stdlib containers: [=] on them compares hidden bucket / node
   structure — never meaningful, often nondeterministic. *)
let mutable_container_names =
  [ "Hashtbl.t"; "Stdlib.Hashtbl.t"; "Queue.t"; "Stdlib.Queue.t"; "Stack.t";
    "Stdlib.Stack.t"; "Buffer.t"; "Stdlib.Buffer.t" ]

let mem name l = List.exists (String.equal name) l

type verdict = Safe | Hazard of string

let rec resolve ~table ~fuel (ty : Types.type_expr) : Types.type_expr =
  if fuel = 0 then ty
  else
    match Types.get_desc ty with
    | Tconstr (p, [], _) -> (
        match Hashtbl.find_opt table.decls (type_key p) with
        | Some (Alias t) -> resolve ~table ~fuel:(fuel - 1) t
        | _ -> ty)
    | _ -> ty

(* Hazard check for *order-sensitive* polymorphic primitives ([compare],
   [min], [max], [<] ..., [Hashtbl.hash]).  [float_ok] distinguishes the
   primitives for which IEEE floats are acceptable ([<], [min], ...) from
   [compare]/[hash], where [Float.compare] should be spelled out. *)
let rec order_hazard ~table ~protocol ~float_ok ~fuel ty : verdict =
  if fuel = 0 then Safe
  else
    let ty = resolve ~table ~fuel ty in
    match Types.get_desc ty with
    | Tvar _ | Tunivar _ -> Hazard "a type variable (unprovable determinism)"
    | Ttuple _ -> Hazard "a tuple (write a keyed comparator)"
    | Tarrow _ -> Hazard "a function type"
    | Tpoly (t, _) -> order_hazard ~table ~protocol ~float_ok ~fuel:(fuel - 1) t
    | Tconstr (p, args, _) -> (
        let name = norm_path p in
        let key = type_key p in
        if mem name atom_names then Safe
        else if String.equal name "float" then
          if float_ok then Safe
          else Hazard "float (use Float.compare / Float.hash)"
        else if mem name container_names || mem key container_names then
          List.fold_left
            (fun acc a ->
              match acc with
              | Hazard _ -> acc
              | Safe ->
                  order_hazard ~table ~protocol ~float_ok ~fuel:(fuel - 1) a)
            Safe args
        else
          match Hashtbl.find_opt table.decls key with
          | Some Variant_enum -> Safe
          | Some (Record | Variant_payload | Open) ->
              Hazard
                (Printf.sprintf "structured type %s (write a keyed comparator)"
                   key)
          | Some Abstract ->
              Hazard
                (Printf.sprintf "abstract type %s (use its dedicated comparator)"
                   key)
          | Some (Alias _) | None ->
              if protocol (module_of_key key) then
                Hazard (Printf.sprintf "protocol type %s" key)
              else Safe)
    | _ -> Safe

(* Hazard check for structural equality ([=], [<>], [List.mem], ...).
   More lenient than [order_hazard]: tuples/records of atoms are fine —
   equality does not depend on an ordering — so only protocol-owned
   types, abstract types, floats, type variables, functions and mutable
   containers are flagged. *)
let rec equality_hazard ~table ~protocol ~fuel ty : verdict =
  if fuel = 0 then Safe
  else
    let ty = resolve ~table ~fuel ty in
    match Types.get_desc ty with
    | Tvar _ | Tunivar _ -> Hazard "a type variable (unprovable determinism)"
    | Tarrow _ -> Hazard "a function type (equality raises)"
    | Tpoly (t, _) -> equality_hazard ~table ~protocol ~fuel:(fuel - 1) t
    | Ttuple ts ->
        List.fold_left
          (fun acc t ->
            match acc with
            | Hazard _ -> acc
            | Safe -> equality_hazard ~table ~protocol ~fuel:(fuel - 1) t)
          Safe ts
    | Tconstr (p, args, _) -> (
        let name = norm_path p in
        let key = type_key p in
        if mem name atom_names then Safe
        else if String.equal name "float" then
          Hazard "float (traverses IEEE float equality; compare explicitly)"
        else if mem name mutable_container_names || mem key mutable_container_names
        then Hazard (Printf.sprintf "mutable container %s" key)
        else if mem name container_names || mem key container_names then
          List.fold_left
            (fun acc a ->
              match acc with
              | Hazard _ -> acc
              | Safe -> equality_hazard ~table ~protocol ~fuel:(fuel - 1) a)
            Safe args
        else
          match Hashtbl.find_opt table.decls key with
          | Some Variant_enum -> Safe
          | Some (Record | Variant_payload | Open) ->
              if protocol (module_of_key key) then
                Hazard
                  (Printf.sprintf "protocol type %s (use its dedicated equality)"
                     key)
              else Safe
          | Some Abstract ->
              if protocol (module_of_key key) then
                Hazard
                  (Printf.sprintf
                     "abstract protocol type %s (use its dedicated equality)" key)
              else Safe
          | Some (Alias _) | None ->
              if protocol (module_of_key key) then
                Hazard (Printf.sprintf "protocol type %s" key)
              else Safe)
    | _ -> Safe

let is_float ~table ty =
  match Types.get_desc (resolve ~table ~fuel:8 ty) with
  | Tconstr (p, [], _) -> String.equal (norm_path p) "float"
  | _ -> false

(* --- shared-mutability classification (D5-D8) --------------------------- *)

(* Types whose values are mutable through and through: sharing one across
   domains without synchronization is a data race. *)
let shared_mutable_type_names =
  [
    ("ref", "ref"); ("Stdlib.ref", "ref"); ("array", "array");
    ("bytes", "bytes"); ("Hashtbl.t", "Hashtbl"); ("Stdlib.Hashtbl.t", "Hashtbl");
    ("Queue.t", "Queue"); ("Stdlib.Queue.t", "Queue"); ("Stack.t", "Stack");
    ("Stdlib.Stack.t", "Stack"); ("Buffer.t", "Buffer");
    ("Stdlib.Buffer.t", "Buffer"); ("Weak.t", "Weak"); ("Stdlib.Weak.t", "Weak");
  ]

let lazy_type_names = [ "lazy_t"; "Lazy.t"; "Stdlib.Lazy.t" ]

(* Synchronized / confined cells: mutable inside, but safe to share by
   construction.  [Dls.key] / [Lock.t] are the repo's 4.14-compatible
   shims over Domain.DLS / Mutex (lib/icc_obs). *)
let sync_cell_type_names =
  [
    "Atomic.t"; "Stdlib.Atomic.t"; "Mutex.t"; "Stdlib.Mutex.t"; "DLS.key";
    "Dls.key"; "Lock.t"; "Semaphore.t";
  ]

type mutability = Shared_mutable of string | Shared_lazy | Unshared

let rec classify_mutable ?(fuel = 16) ~table ty : mutability =
  if fuel = 0 then Unshared
  else
    let ty = resolve ~table ~fuel ty in
    match Types.get_desc ty with
    | Ttuple ts ->
        List.fold_left
          (fun acc t ->
            match acc with
            | Shared_mutable _ | Shared_lazy -> acc
            | Unshared -> classify_mutable ~fuel:(fuel - 1) ~table t)
          Unshared ts
    | Tconstr (p, args, _) -> (
        let name = norm_path p in
        let key = type_key p in
        if mem name sync_cell_type_names || mem key sync_cell_type_names then
          Unshared
        else if mem name lazy_type_names || mem key lazy_type_names then
          Shared_lazy
        else
          match
            (match List.assoc_opt name shared_mutable_type_names with
            | Some _ as d -> d
            | None -> List.assoc_opt key shared_mutable_type_names)
          with
          | Some desc -> Shared_mutable desc
          | None ->
              if Hashtbl.mem table.muts key then
                Shared_mutable (Printf.sprintf "mutable record %s" key)
              else if mem name container_names || mem key container_names then
                (* An immutable spine still shares its mutable elements. *)
                List.fold_left
                  (fun acc a ->
                    match acc with
                    | Shared_mutable _ | Shared_lazy -> acc
                    | Unshared -> classify_mutable ~fuel:(fuel - 1) ~table a)
                  Unshared args
              else Unshared)
    | _ -> Unshared
