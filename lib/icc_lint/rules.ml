(* The lint pass proper: one [Tast_iterator] walk over a typed structure,
   enforcing the repo's determinism invariants (DESIGN.md §3.4):

     D1 [d1-poly-compare]   no polymorphic compare/equality/hash at
                            protocol, structured or abstract types —
                            require the dedicated keyed comparators.
     D2 [d2-hashtbl-order]  no [Hashtbl.fold]/[iter]/[to_seq] whose
                            bucket-order can escape — unless the result
                            feeds a keyed [List.sort] directly, or an
                            [@icc.allow] justifies order-insensitivity.
     D3 [d3-banned-fn]      no [Random.self_init], [Sys.time],
                            [Unix.gettimeofday]/[time], no [Marshal].
        [d3-float-eq]       no [=]/[<>] at float.
     D4 [d4-catchall-exn]   no [try ... with _ ->] swallowing
                            [Assert_failure] in protocol code.

   Working on the *typed* tree matters: D1 needs the instantiation type of
   each primitive occurrence (so [compare] at [int] stays legal while
   [compare] at [Types.cert] does not), and detection survives aliasing,
   [open] and eta-expansion because paths arrive fully resolved. *)

open Typedtree

type context = {
  table : Typeinfo.table;
  protocol : string -> bool;
  allows : Allowlist.t;
  report : Diag.t -> unit;
  (* Expression locs cleared by an enclosing construct (a keyed sort over
     a Hashtbl.fold, an [= None] tag probe): parents are visited first,
     so they can exempt a child before the child's own check runs. *)
  exempt : (string * int * int, unit) Hashtbl.t;
}

let loc_key (loc : Location.t) =
  ( loc.Location.loc_start.Lexing.pos_fname,
    loc.Location.loc_start.Lexing.pos_cnum,
    loc.Location.loc_end.Lexing.pos_cnum )

let exempted ctx loc = Hashtbl.mem ctx.exempt (loc_key loc)
let exempt ctx loc = Hashtbl.replace ctx.exempt (loc_key loc) ()

let emit ctx loc rule msg =
  if not (Diag.is_suppressible rule && Allowlist.permits ctx.allows rule) then
    ctx.report (Diag.of_location loc ~rule ~msg)

(* --- primitive tables --------------------------------------------------- *)

let mem s l = List.exists (String.equal s) l

(* Order-sensitive primitives where even floats deserve an explicit
   comparator ([Float.compare] handles nan; polymorphic [compare] boxes). *)
let order_prims = [ "Stdlib.compare" ]

let hash_prims =
  [ "Stdlib.Hashtbl.hash"; "Stdlib.Hashtbl.seeded_hash"; "Stdlib.Hashtbl.hash_param" ]

(* Order primitives that are fine at floats (pure IEEE comparisons). *)
let order_prims_float_ok =
  [ "Stdlib.min"; "Stdlib.max"; "Stdlib.<"; "Stdlib.>"; "Stdlib.<="; "Stdlib.>=" ]

let eq_prims = [ "Stdlib.="; "Stdlib.<>" ]

(* Functions applying structural equality to their element/key argument. *)
let eq_carrier_prims =
  [
    "Stdlib.List.mem"; "Stdlib.List.assoc"; "Stdlib.List.assoc_opt";
    "Stdlib.List.mem_assoc"; "Stdlib.List.remove_assoc"; "Stdlib.Array.mem";
  ]

let hashtbl_order_prims =
  [
    "Stdlib.Hashtbl.fold"; "Stdlib.Hashtbl.iter"; "Stdlib.Hashtbl.to_seq";
    "Stdlib.Hashtbl.to_seq_keys"; "Stdlib.Hashtbl.to_seq_values";
  ]

let sort_prims =
  [
    "Stdlib.List.sort"; "Stdlib.List.stable_sort"; "Stdlib.List.fast_sort";
    "Stdlib.List.sort_uniq"; "Stdlib.Array.sort"; "Stdlib.Array.stable_sort";
  ]

(* Banned-by-name idents, matched on the last two (normalized) path
   components so [Stdlib.Random.self_init] and [Random.self_init] agree. *)
let banned_tails =
  [
    ("Random.self_init", "nondeterministic seeding — thread a seeded Rng instead");
    ("Sys.time", "wall-clock reads break replay — use simulation time");
    ("Unix.gettimeofday", "wall-clock reads break replay — use simulation time");
    ("Unix.time", "wall-clock reads break replay — use simulation time");
  ]

let tail2 comps =
  let rec go = function
    | [ a; b ] -> a ^ "." ^ b
    | [ a ] -> a
    | _ :: tl -> go tl
    | [] -> ""
  in
  go comps

(* --- small expression shape helpers ------------------------------------ *)

let ident_name (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some (Typeinfo.norm_path p)
  | _ -> None

(* The typechecker rewrites [x |> f] / [f @@ x] into (possibly nested,
   curried) plain applications, so analyses must see through apply
   chains: [(f a) b] has an inner apply node as its function. *)
let rec flatten_apply (e : expression) =
  match e.exp_desc with
  | Texp_apply (fn, args) ->
      let head, inner = flatten_apply fn in
      (head, inner @ args)
  | _ -> (e, [])

let head_name (e : expression) = ident_name (fst (flatten_apply e))

let is_app_of (e : expression) names =
  match e.exp_desc with
  | Texp_apply _ -> (
      match head_name e with Some n -> mem n names | None -> false)
  | _ -> false

(* Follow a [List.rev] post-processing chain back to the expression that
   produced the data ([|>]/[@@] are already gone by this stage). *)
let rec source_of (e : expression) =
  match e.exp_desc with
  | Texp_apply _ -> (
      let head, args = flatten_apply e in
      match (ident_name head, args) with
      | Some "Stdlib.List.rev", [ (_, Some x) ] -> source_of x
      | _ -> e)
  | _ -> e

(* If [e]'s data source is an order-sensitive Hashtbl traversal, exempt it:
   the enclosing keyed sort re-establishes a canonical order. *)
let exempt_sorted_source ctx e =
  let src = source_of e in
  if is_app_of src hashtbl_order_prims then exempt ctx src.exp_loc

let is_constant_construct (e : expression) =
  match e.exp_desc with
  | Texp_construct (_, _, []) -> true
  | Texp_constant _ -> true
  | _ -> false

let first_arrow_arg ty =
  match Types.get_desc ty with Tarrow (_, a, _, _) -> Some a | _ -> None

(* --- per-node checks ---------------------------------------------------- *)

let fuel = 32

let check_order ctx loc ~what ~float_ok ty =
  match first_arrow_arg ty with
  | None -> ()
  | Some a -> (
      match
        Typeinfo.order_hazard ~table:ctx.table ~protocol:ctx.protocol ~float_ok
          ~fuel a
      with
      | Typeinfo.Safe -> ()
      | Typeinfo.Hazard why ->
          emit ctx loc Diag.rule_poly_compare
            (Printf.sprintf "polymorphic %s instantiated at %s" what why))

let check_equality ctx loc ~what ty =
  match first_arrow_arg ty with
  | None -> ()
  | Some a ->
      if Typeinfo.is_float ~table:ctx.table a then
        emit ctx loc Diag.rule_float_eq
          (Printf.sprintf
             "float %s — IEEE equality is a determinism trap (nan, -0.); \
              compare against an explicit epsilon or use Float.equal"
             what)
      else (
        match
          Typeinfo.equality_hazard ~table:ctx.table ~protocol:ctx.protocol
            ~fuel a
        with
        | Typeinfo.Safe -> ()
        | Typeinfo.Hazard why ->
            emit ctx loc Diag.rule_poly_compare
              (Printf.sprintf "structural %s instantiated at %s" what why))

let check_ident ctx (e : expression) p =
  let name = Typeinfo.norm_path p in
  let comps = Typeinfo.path_components p in
  if mem "Marshal" comps then
    emit ctx e.exp_loc Diag.rule_banned_fn
      (name
     ^ ": Marshal has no canonical byte representation across versions — \
        use the explicit codecs")
  else
    match List.assoc_opt (tail2 comps) banned_tails with
    | Some why -> emit ctx e.exp_loc Diag.rule_banned_fn (name ^ ": " ^ why)
    | None ->
        if mem name order_prims then
          check_order ctx e.exp_loc ~what:"compare" ~float_ok:false e.exp_type
        else if mem name hash_prims then
          check_order ctx e.exp_loc ~what:"Hashtbl.hash" ~float_ok:false
            e.exp_type
        else if mem name order_prims_float_ok then
          check_order ctx e.exp_loc
            ~what:(Typeinfo.norm_component (tail2 comps))
            ~float_ok:true e.exp_type
        else if mem name eq_prims then begin
          if not (exempted ctx e.exp_loc) then
            check_equality ctx e.exp_loc ~what:"equality" e.exp_type
        end
        else if mem name eq_carrier_prims then
          check_equality ctx e.exp_loc
            ~what:("equality via " ^ tail2 comps)
            e.exp_type

let check_apply ctx (e : expression) fn =
  (* An apply whose function is itself an apply is one curried call: only
     the outermost node speaks for it (prevents double reports and keeps
     the exemption keyed to one loc). *)
  (match fn.exp_desc with Texp_apply _ -> exempt ctx fn.exp_loc | _ -> ());
  let head, args = flatten_apply e in
  (match ident_name head with
  | Some n when mem n sort_prims ->
      List.iter (fun (_, a) -> Option.iter (exempt_sorted_source ctx) a) args
  | Some n when mem n eq_prims ->
      (* [x = None], [l <> []], [c = 'a'], [n = 0]: tag/constant probes
         never traverse the payload — exempt the operator occurrence. *)
      let constant_probe =
        List.exists
          (fun (_, a) ->
            match a with Some a -> is_constant_construct a | None -> false)
          args
      in
      if constant_probe then exempt ctx head.exp_loc
  | _ -> ());
  (* D2: an order-sensitive Hashtbl traversal not cleared by a parent. *)
  match head_name e with
  | Some n when mem n hashtbl_order_prims ->
      if not (exempted ctx e.exp_loc) then
        emit ctx e.exp_loc Diag.rule_hashtbl_order
          (Typeinfo.norm_component (tail2 (String.split_on_char '.' n))
          ^ " iterates in unspecified bucket order — sort the result with a \
             keyed comparator, or justify order-insensitivity with \
             [@icc.allow \"d2-hashtbl-order: ...\"]")
  | _ -> ()

let rec pattern_catches_all (p : pattern) =
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_or (a, b, _) -> pattern_catches_all a || pattern_catches_all b
  | _ -> false

let check_try ctx (e : expression) cases =
  List.iter
    (fun (c : value case) ->
      if pattern_catches_all c.c_lhs then
        emit ctx c.c_lhs.pat_loc Diag.rule_catchall_exn
          "catch-all exception handler swallows Assert_failure (and \
           Stack_overflow, Out_of_memory) — match the specific exceptions \
           expected here")
    cases;
  ignore e

(* --- the iterator ------------------------------------------------------- *)

let lint_structure ~table ~protocol ~report (st : structure) =
  let ctx =
    {
      table;
      protocol;
      allows = Allowlist.create ~report;
      report;
      exempt = Hashtbl.create 64;
    }
  in
  let expr sub (e : expression) =
    let pushed = Allowlist.push ctx.allows e.exp_attributes in
    (match e.exp_desc with
    | Texp_apply (fn, _) -> check_apply ctx e fn
    | Texp_ident (p, _, _) -> check_ident ctx e p
    | Texp_try (_, cases) -> check_try ctx e cases
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e;
    if pushed then Allowlist.pop ctx.allows
  in
  let value_binding sub (vb : value_binding) =
    let pushed = Allowlist.push ctx.allows vb.vb_attributes in
    Tast_iterator.default_iterator.value_binding sub vb;
    if pushed then Allowlist.pop ctx.allows
  in
  let iter = { Tast_iterator.default_iterator with expr; value_binding } in
  iter.structure iter st
