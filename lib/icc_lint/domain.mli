(** D5-D8 domain-safety analysis (DESIGN.md §3.9): an inventory of
    top-level mutable state, a reference graph rooted at the
    [@icc.domain_entry] seeds, and findings for unsynchronized state
    reachable from the parallel-verify closure.

    [collect] is called once per linted implementation; [finalize] once
    all units are in — it resolves names across modules, runs the
    reachability pass and reports through the same callback as the
    D1-D4 rules.  Escape hatches: [@@icc.domain_safe "justification"]
    on a declaration, or [@icc.allow "d5-..|d6-..|d7-..|d8-..: ..."]
    at a use site or on the declaration (which then covers every use of
    that state).  Unused hatches are reported as [allow-unused]. *)

type acc

val create : unit -> acc

val collect :
  acc ->
  table:Typeinfo.table ->
  modname:string ->
  report:(Diag.t -> unit) ->
  Typedtree.structure ->
  unit

val finalize : acc -> report:(Diag.t -> unit) -> unit

type inv = {
  i_name : string;  (** qualified key, e.g. ["Group.Fixed_base.cache"] *)
  i_kind : string;  (** ["ref"], ["Hashtbl"], ["lazy"], ... *)
  i_sync : string;
      (** ["atomic"], ["domain-local"], ["lock"], ["unsynchronized"] or
          ["domain_safe: <justification>"] *)
  i_file : string;
  i_line : int;
}

val inventory : acc -> inv list
(** The collected mutable-state inventory, sorted by name. *)
