(* Orchestration: find [.cmt]/[.cmti] artifacts, build the cross-module
   type table (pass 1), run the rules over every implementation (pass 2),
   and render a deterministic report.

   Two analysis families share the same walk: the local determinism rules
   D1-D4 (Rules) and the cross-module domain-safety rules D5-D8 (Domain),
   whose per-unit collections are resolved in one [Domain.finalize] once
   every implementation has been seen.

   The driver is filesystem-only — it never invokes the compiler — so it
   can run as a plain dune rule over whatever the build just produced. *)

type config = {
  paths : string list; (* linted (and used for type info) *)
  dep_paths : string list; (* type info only, e.g. --deps lib *)
  json : bool;
  inventory : bool; (* dump the mutable-state inventory (D5 material) *)
  protocol_modules : string list;
}

(* Modules owning protocol/message/block/trace state: polymorphic
   compare/equality at their (non-atomic) types is a D1 finding. *)
let default_protocol_modules =
  [
    (* icc_core *)
    "Types"; "Block"; "Message"; "Chain"; "Beacon"; "Pool"; "Codec"; "Config";
    (* icc_sim *)
    "Trace";
    (* icc_crypto: every one of these exports a dedicated equal/compare *)
    "Sha256"; "Merkle"; "Multisig"; "Schnorr"; "Threshold_vuf"; "Dkg"; "Dleq";
    "Shamir"; "Group"; "Fp";
  ]

let default ?(json = false) ?(inventory = false) ?(dep_paths = []) paths =
  {
    paths;
    dep_paths;
    json;
    inventory;
    protocol_modules = default_protocol_modules;
  }

(* --- artifact discovery ------------------------------------------------- *)

let has_suffix s suf =
  let ls = String.length s and lu = String.length suf in
  ls >= lu && String.equal (String.sub s (ls - lu) lu) suf

let rec scan_path acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> scan_path acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if has_suffix path ".cmt" || has_suffix path ".cmti" then path :: acc
  else acc

let find_artifacts paths =
  let all =
    List.fold_left
      (fun acc p ->
        if Sys.file_exists p then scan_path acc p
        else begin
          Printf.eprintf "icc-lint: no such path: %s\n" p;
          acc
        end)
      [] paths
  in
  List.sort String.compare all

(* --- the passes --------------------------------------------------------- *)

type result = {
  findings : Diag.t list;
  errors : string list; (* unreadable artifacts, in path order *)
  modules : int; (* implementations linted *)
  inventory : Domain.inv list; (* top-level mutable state, sorted *)
}

let read_cmt errors path =
  match Cmt_format.read_cmt path with
  | cmt -> Some cmt
  | exception e ->
      errors := Printf.sprintf "%s: %s" path (Printexc.to_string e) :: !errors;
      None

let collect config =
  let errors = ref [] in
  let lint_files = find_artifacts config.paths in
  let dep_files = find_artifacts config.dep_paths in
  let table = Typeinfo.create () in
  let read = List.filter_map (read_cmt errors) in
  let lint_cmts = read lint_files in
  let dep_cmts = read dep_files in
  List.iter (Typeinfo.add_cmt table) dep_cmts;
  List.iter (Typeinfo.add_cmt table) lint_cmts;
  let protocol m = List.exists (String.equal m) config.protocol_modules in
  let findings = ref [] in
  let report d = findings := d :: !findings in
  let modules = ref 0 in
  let domain = Domain.create () in
  List.iter
    (fun (cmt : Cmt_format.cmt_infos) ->
      match cmt.cmt_annots with
      | Implementation st ->
          incr modules;
          Rules.lint_structure ~table ~protocol ~report st;
          Domain.collect domain ~table ~modname:cmt.cmt_modname ~report st
      | _ -> ())
    lint_cmts;
  Domain.finalize domain ~report;
  {
    findings = Diag.sort !findings;
    errors = List.rev !errors;
    modules = !modules;
    inventory = Domain.inventory domain;
  }

(* --- reporting ---------------------------------------------------------- *)

let count_rule findings rule =
  List.length (List.filter (fun (d : Diag.t) -> String.equal d.rule rule) findings)

let inv_to_text (i : Domain.inv) =
  Printf.sprintf "%s:%d: [inventory] %s: %s (%s)" i.i_file i.i_line i.i_name
    i.i_kind i.i_sync

let inv_to_json (i : Domain.inv) =
  Printf.sprintf
    {|{"type":"lint-inventory","name":"%s","kind":"%s","sync":"%s","file":"%s","line":%d}|}
    (Diag.json_escape i.i_name) (Diag.json_escape i.i_kind)
    (Diag.json_escape i.i_sync) (Diag.json_escape i.i_file) i.i_line

(* The per-rule summary object CI gates on ([icc lint --json] +
   zero-unsuppressed-findings check); every known rule id appears, with
   zero counts included, so consumers need no existence checks. *)
let summary_json r =
  let counts =
    List.map
      (fun rule ->
        Printf.sprintf {|"%s":%d|} rule (count_rule r.findings rule))
      Diag.all_rules
  in
  Printf.sprintf
    {|{"type":"lint-summary","modules":%d,"findings":%d,"errors":%d,%s}|}
    r.modules
    (List.length r.findings)
    (List.length r.errors)
    (String.concat "," counts)

(* Findings go to stdout (the machine-readable stream); the summary and
   any artifact errors go to stderr.  Exit status: 0 clean, 1 findings,
   2 when artifacts could not be read (the lint was incomplete). *)
let run config =
  let r = collect config in
  if config.inventory then begin
    let render = if config.json then inv_to_json else inv_to_text in
    List.iter (fun i -> print_endline (render i)) r.inventory
  end;
  let render = if config.json then Diag.to_json else Diag.to_text in
  List.iter (fun d -> print_endline (render d)) r.findings;
  if config.json then print_endline (summary_json r);
  List.iter (fun e -> Printf.eprintf "icc-lint: error: %s\n" e) r.errors;
  let n = List.length r.findings in
  let by_rule =
    List.filter_map
      (fun rule ->
        match count_rule r.findings rule with
        | 0 -> None
        | c -> Some (Printf.sprintf "%s %d" rule c))
      Diag.all_rules
  in
  Printf.eprintf "icc-lint: %d finding%s in %d module%s%s\n" n
    (if n = 1 then "" else "s")
    r.modules
    (if r.modules = 1 then "" else "s")
    (match by_rule with
    | [] -> ""
    | l -> " (" ^ String.concat ", " l ^ ")");
  if r.errors <> [] then 2 else if n > 0 then 1 else 0

(* Shared argv parsing for [bin/lint] and the [icc lint] subcommand:
   [--json] [--inventory] [--deps DIR]... [PATH]... *)
let config_of_args args =
  let json = ref false
  and inventory = ref false
  and deps = ref []
  and paths = ref [] in
  let rec go = function
    | [] -> Ok ()
    | "--json" :: rest ->
        json := true;
        go rest
    | "--inventory" :: rest ->
        inventory := true;
        go rest
    | "--deps" :: dir :: rest ->
        deps := dir :: !deps;
        go rest
    | [ "--deps" ] -> Error "--deps requires a directory argument"
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Error (Printf.sprintf "unknown option %s" arg)
    | p :: rest ->
        paths := p :: !paths;
        go rest
  in
  match go args with
  | Error e -> Error e
  | Ok () ->
      let paths =
        match List.rev !paths with
        | [] ->
            (* default: the current build's lib tree, from either the
               source root or inside _build/default *)
            if Sys.file_exists "_build/default/lib" then
              [ "_build/default/lib" ]
            else [ "lib" ]
        | ps -> ps
      in
      Ok
        (default ~json:!json ~inventory:!inventory ~dep_paths:(List.rev !deps)
           paths)
