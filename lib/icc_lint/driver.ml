(* Orchestration: find [.cmt]/[.cmti] artifacts, build the cross-module
   type table (pass 1), run the rules over every implementation (pass 2),
   and render a deterministic report.

   The driver is filesystem-only — it never invokes the compiler — so it
   can run as a plain dune rule over whatever the build just produced. *)

type config = {
  paths : string list; (* linted (and used for type info) *)
  dep_paths : string list; (* type info only, e.g. --deps lib *)
  json : bool;
  protocol_modules : string list;
}

(* Modules owning protocol/message/block/trace state: polymorphic
   compare/equality at their (non-atomic) types is a D1 finding. *)
let default_protocol_modules =
  [
    (* icc_core *)
    "Types"; "Block"; "Message"; "Chain"; "Beacon"; "Pool"; "Codec"; "Config";
    (* icc_sim *)
    "Trace";
    (* icc_crypto: every one of these exports a dedicated equal/compare *)
    "Sha256"; "Merkle"; "Multisig"; "Schnorr"; "Threshold_vuf"; "Dkg"; "Dleq";
    "Shamir"; "Group"; "Fp";
  ]

let default ?(json = false) ?(dep_paths = []) paths =
  { paths; dep_paths; json; protocol_modules = default_protocol_modules }

(* --- artifact discovery ------------------------------------------------- *)

let has_suffix s suf =
  let ls = String.length s and lu = String.length suf in
  ls >= lu && String.equal (String.sub s (ls - lu) lu) suf

let rec scan_path acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> scan_path acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if has_suffix path ".cmt" || has_suffix path ".cmti" then path :: acc
  else acc

let find_artifacts paths =
  let all =
    List.fold_left
      (fun acc p ->
        if Sys.file_exists p then scan_path acc p
        else begin
          Printf.eprintf "icc-lint: no such path: %s\n" p;
          acc
        end)
      [] paths
  in
  List.sort String.compare all

(* --- the two passes ----------------------------------------------------- *)

type result = {
  findings : Diag.t list;
  errors : string list; (* unreadable artifacts, in path order *)
  modules : int; (* implementations linted *)
}

let read_cmt errors path =
  match Cmt_format.read_cmt path with
  | cmt -> Some cmt
  | exception e ->
      errors := Printf.sprintf "%s: %s" path (Printexc.to_string e) :: !errors;
      None

let collect config =
  let errors = ref [] in
  let lint_files = find_artifacts config.paths in
  let dep_files = find_artifacts config.dep_paths in
  let table = Typeinfo.create () in
  let read = List.filter_map (read_cmt errors) in
  let lint_cmts = read lint_files in
  let dep_cmts = read dep_files in
  List.iter (Typeinfo.add_cmt table) dep_cmts;
  List.iter (Typeinfo.add_cmt table) lint_cmts;
  let protocol m = List.exists (String.equal m) config.protocol_modules in
  let findings = ref [] in
  let report d = findings := d :: !findings in
  let modules = ref 0 in
  List.iter
    (fun (cmt : Cmt_format.cmt_infos) ->
      match cmt.cmt_annots with
      | Implementation st ->
          incr modules;
          Rules.lint_structure ~table ~protocol ~report st
      | _ -> ())
    lint_cmts;
  {
    findings = Diag.sort !findings;
    errors = List.rev !errors;
    modules = !modules;
  }

(* --- reporting ---------------------------------------------------------- *)

(* Findings go to stdout (the machine-readable stream); the summary and
   any artifact errors go to stderr.  Exit status: 0 clean, 1 findings,
   2 when artifacts could not be read (the lint was incomplete). *)
let run config =
  let r = collect config in
  let render = if config.json then Diag.to_json else Diag.to_text in
  List.iter (fun d -> print_endline (render d)) r.findings;
  List.iter (fun e -> Printf.eprintf "icc-lint: error: %s\n" e) r.errors;
  let n = List.length r.findings in
  Printf.eprintf "icc-lint: %d finding%s in %d module%s\n" n
    (if n = 1 then "" else "s")
    r.modules
    (if r.modules = 1 then "" else "s");
  if r.errors <> [] then 2 else if n > 0 then 1 else 0

(* Shared argv parsing for [bin/lint] and the [icc lint] subcommand:
   [--json] [--deps DIR]... [PATH]... *)
let config_of_args args =
  let json = ref false and deps = ref [] and paths = ref [] in
  let rec go = function
    | [] -> Ok ()
    | "--json" :: rest ->
        json := true;
        go rest
    | "--deps" :: dir :: rest ->
        deps := dir :: !deps;
        go rest
    | [ "--deps" ] -> Error "--deps requires a directory argument"
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Error (Printf.sprintf "unknown option %s" arg)
    | p :: rest ->
        paths := p :: !paths;
        go rest
  in
  match go args with
  | Error e -> Error e
  | Ok () ->
      let paths =
        match List.rev !paths with
        | [] ->
            (* default: the current build's lib tree, from either the
               source root or inside _build/default *)
            if Sys.file_exists "_build/default/lib" then
              [ "_build/default/lib" ]
            else [ "lib" ]
        | ps -> ps
      in
      Ok (default ~json:!json ~dep_paths:(List.rev !deps) paths)
