(** Cross-module type knowledge: a declaration table built from the
    build's [.cmti] / [.cmt] files, and the hazard classifiers the rules
    use to decide whether a polymorphic primitive instantiation is
    deterministic. *)

type decl =
  | Alias of Types.type_expr
  | Record
  | Variant_enum
  | Variant_payload
  | Abstract
  | Open

type table
(** Declaration table plus a record-mutability side table (see ml). *)

val norm_component : string -> string
(** ["Icc_core__Types"] -> ["Types"]; unwrapped names pass through. *)

val norm_path : Path.t -> string
(** Fully normalized dotted name, e.g. ["Stdlib.compare"]. *)

val path_components : Path.t -> string list

val type_key : Path.t -> string
(** ["Module.type"] table key ("Types.party_id"); bare idents keep just
    the type name and never match the table. *)

val module_of_key : string -> string

val create : unit -> table

val add_cmt : table -> Cmt_format.cmt_infos -> unit
(** Record all top-level type declarations.  Interface entries overwrite
    implementation entries (the [.mli] view is authoritative). *)

type verdict = Safe | Hazard of string

val order_hazard :
  table:table ->
  protocol:(string -> bool) ->
  float_ok:bool ->
  fuel:int ->
  Types.type_expr ->
  verdict
(** Is instantiating an order-sensitive polymorphic primitive ([compare],
    [min], [<], [Hashtbl.hash], ...) at this type a determinism hazard? *)

val equality_hazard :
  table:table -> protocol:(string -> bool) -> fuel:int -> Types.type_expr -> verdict
(** Same question for structural equality ([=], [List.mem], ...). *)

val is_float : table:table -> Types.type_expr -> bool

type mutability =
  | Shared_mutable of string  (** description, e.g. ["Hashtbl"] *)
  | Shared_lazy
  | Unshared

val classify_mutable :
  ?fuel:int -> table:table -> Types.type_expr -> mutability
(** Is a value of this type shared mutable state if placed in a
    top-level binding?  Resolves aliases, looks through tuples and
    immutable containers, and treats [Atomic.t] / [Mutex.t] /
    [Domain.DLS.key] (and the repo's [Dls] / [Lock] shims) as
    synchronized, hence [Unshared].  Used by the D5-D8 domain pass. *)
