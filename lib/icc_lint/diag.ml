(* Lint findings: location + rule id + message, with deterministic ordering
   and the two output formats (human text, trace-bus-style flat JSON).

   Rule ids are the stable, user-facing contract: they appear in
   diagnostics, in [@icc.allow "rule-id: justification"] attributes and in
   the JSON stream consumed by analyzer tooling.  See DESIGN.md §3.4. *)

type t = { file : string; line : int; col : int; rule : string; msg : string }

(* The determinism & protocol-invariant rules (D1-D4), the domain-safety
   rules (D5-D8, DESIGN.md §3.9) and the two meta rules policing the
   escape hatches.  Meta rules are not suppressible: an allow cannot
   allow itself. *)
let rule_poly_compare = "d1-poly-compare"
let rule_hashtbl_order = "d2-hashtbl-order"
let rule_banned_fn = "d3-banned-fn"
let rule_float_eq = "d3-float-eq"
let rule_catchall_exn = "d4-catchall-exn"
let rule_mutable_global = "d5-mutable-global"
let rule_domain_escape = "d6-domain-escape"
let rule_unguarded_lazy = "d7-unguarded-lazy"
let rule_nonatomic_rmw = "d8-nonatomic-rmw"
let rule_allow_bad = "allow-bad"
let rule_allow_unused = "allow-unused"

(* The domain-safety family is checked by a deferred cross-module pass
   (reachability from [@icc.domain_entry] seeds), so its [@icc.allow]
   used/unused bookkeeping is owned by Domain, not by the per-expression
   Allowlist scopes of the D1-D4 walk. *)
let domain_rules =
  [
    rule_mutable_global;
    rule_domain_escape;
    rule_unguarded_lazy;
    rule_nonatomic_rmw;
  ]

let is_domain_rule r = List.exists (String.equal r) domain_rules

let suppressible_rules =
  [
    rule_poly_compare;
    rule_hashtbl_order;
    rule_banned_fn;
    rule_float_eq;
    rule_catchall_exn;
    rule_mutable_global;
    rule_domain_escape;
    rule_unguarded_lazy;
    rule_nonatomic_rmw;
  ]

let is_suppressible r = List.exists (String.equal r) suppressible_rules

(* Stable rule universe for per-rule summary counts (driver/CI gate). *)
let all_rules = suppressible_rules @ [ rule_allow_bad; rule_allow_unused ]

let of_location (loc : Location.t) ~rule ~msg =
  let p = loc.Location.loc_start in
  {
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    msg;
  }

(* Total, keyed ordering so reports are byte-stable across runs — the
   linter holds itself to the determinism bar it enforces. *)
let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let sort findings = List.sort_uniq compare_finding findings

let to_text f = Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg

(* Same flat-object style as Icc_sim.Trace.to_json: one object per line,
   string/int fields only, conservative escaping. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    {|{"type":"lint-finding","rule":"%s","file":"%s","line":%d,"col":%d,"msg":"%s"}|}
    (json_escape f.rule) (json_escape f.file) f.line f.col (json_escape f.msg)
