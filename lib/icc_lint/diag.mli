(** Lint findings: location, rule id, message; deterministic ordering and
    the text / flat-JSON renderings. *)

type t = { file : string; line : int; col : int; rule : string; msg : string }

val rule_poly_compare : string
val rule_hashtbl_order : string
val rule_banned_fn : string
val rule_float_eq : string
val rule_catchall_exn : string
val rule_mutable_global : string
val rule_domain_escape : string
val rule_unguarded_lazy : string
val rule_nonatomic_rmw : string
val rule_allow_bad : string
val rule_allow_unused : string

val suppressible_rules : string list
(** The rule ids an [@icc.allow] attribute may name (D1-D8). *)

val is_suppressible : string -> bool

val domain_rules : string list
(** The deferred cross-module domain-safety family (D5-D8): their
    allow bookkeeping is owned by the Domain pass, not the lexical
    Allowlist scopes. *)

val is_domain_rule : string -> bool

val all_rules : string list
(** Every rule id in a stable order, for per-rule summary counts. *)

val of_location : Location.t -> rule:string -> msg:string -> t

val compare_finding : t -> t -> int
(** Keyed total order: (file, line, col, rule, msg). *)

val sort : t list -> t list
(** Sort and de-duplicate by {!compare_finding}. *)

val to_text : t -> string
(** ["file:line:col: [rule] msg"]. *)

val to_json : t -> string
(** One flat JSON object, same style as [Icc_sim.Trace.to_json]. *)

val json_escape : string -> string
(** Conservative string escaping shared by the driver's JSON surfaces. *)
