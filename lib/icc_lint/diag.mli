(** Lint findings: location, rule id, message; deterministic ordering and
    the text / flat-JSON renderings. *)

type t = { file : string; line : int; col : int; rule : string; msg : string }

val rule_poly_compare : string
val rule_hashtbl_order : string
val rule_banned_fn : string
val rule_float_eq : string
val rule_catchall_exn : string
val rule_allow_bad : string
val rule_allow_unused : string

val suppressible_rules : string list
(** The rule ids an [@icc.allow] attribute may name (D1-D4). *)

val is_suppressible : string -> bool

val of_location : Location.t -> rule:string -> msg:string -> t

val compare_finding : t -> t -> int
(** Keyed total order: (file, line, col, rule, msg). *)

val sort : t list -> t list
(** Sort and de-duplicate by {!compare_finding}. *)

val to_text : t -> string
(** ["file:line:col: [rule] msg"]. *)

val to_json : t -> string
(** One flat JSON object, same style as [Icc_sim.Trace.to_json]. *)
