(* The per-expression suppression escape hatch:

     (Hashtbl.fold f tbl [] [@icc.allow "d2-hashtbl-order: commutative sum"])

   One string payload, ["rule-id: justification"].  The justification is
   mandatory — an allow without a written reason is itself a finding — and
   an allow that suppresses nothing is reported too, so stale annotations
   cannot linger after the code they excused is gone.  Scoping is lexical:
   an allow covers the annotated expression and everything beneath it. *)

type entry = {
  a_rule : string;
  a_loc : Location.t;
  mutable a_used : bool;
}

type t = {
  mutable stack : entry list list;
  report : Diag.t -> unit;
}

let create ~report = { stack = []; report }

let attribute_name = "icc.allow"

(* Minimum justification: non-empty after the colon.  (Rejecting short
   strings outright would just invite "xxxxxxx"; review judges quality.) *)
let parse_payload s =
  match String.index_opt s ':' with
  | None -> Error "payload must be \"rule-id: justification\""
  | Some i ->
      let rule = String.trim (String.sub s 0 i) in
      let just = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      if not (Diag.is_suppressible rule) then
        Error
          (Printf.sprintf "unknown or non-suppressible rule id %S (known: %s)"
             rule
             (String.concat ", " Diag.suppressible_rules))
      else if String.equal just "" then
        Error (Printf.sprintf "missing justification for %S" rule)
      else Ok rule

let string_payload (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

(* Push the allows found in [attrs]; returns [true] iff a frame was
   pushed (and must be popped by the caller). *)
let push t (attrs : Parsetree.attributes) =
  let entries =
    List.filter_map
      (fun (attr : Parsetree.attribute) ->
        if not (String.equal attr.attr_name.txt attribute_name) then None
        else
          match string_payload attr with
          | None ->
              t.report
                (Diag.of_location attr.attr_loc ~rule:Diag.rule_allow_bad
                   ~msg:
                     "[@icc.allow] payload must be a string literal \
                      \"rule-id: justification\"");
              None
          | Some s -> (
              match parse_payload s with
              | Error msg ->
                  t.report
                    (Diag.of_location attr.attr_loc ~rule:Diag.rule_allow_bad
                       ~msg:("malformed [@icc.allow]: " ^ msg));
                  None
              | Ok rule ->
                  Some { a_rule = rule; a_loc = attr.attr_loc; a_used = false }))
      attrs
  in
  if entries = [] then false
  else begin
    t.stack <- entries :: t.stack;
    true
  end

(* Pop one frame; unused allows become findings.  Domain-rule allows
   (D5-D8) are excluded: their findings are produced by the deferred
   cross-module Domain pass, which owns their used/unused bookkeeping —
   this walk would declare them unused before that pass has run. *)
let pop t =
  match t.stack with
  | [] -> ()
  | frame :: rest ->
      t.stack <- rest;
      List.iter
        (fun e ->
          if (not e.a_used) && not (Diag.is_domain_rule e.a_rule) then
            t.report
              (Diag.of_location e.a_loc ~rule:Diag.rule_allow_unused
                 ~msg:
                   (Printf.sprintf
                      "[@icc.allow %S] suppressed nothing — remove it" e.a_rule)))
        frame

(* Is [rule] allowed here?  Marks the innermost matching allow used. *)
let permits t rule =
  let rec scan = function
    | [] -> false
    | frame :: rest -> (
        match List.find_opt (fun e -> String.equal e.a_rule rule) frame with
        | Some e ->
            e.a_used <- true;
            true
        | None -> scan rest)
  in
  scan t.stack
