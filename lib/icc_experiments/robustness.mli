(** Experiment E7 — robust consensus: n/3 parties crash mid-run; the block
    rate degrades to roughly the honest-leader fraction and never to zero.
    The recovery extension crashes the same parties through the nemesis
    layer (with 20% link loss while they are down) and lets them recover:
    pool-resync rehydrates them and the post-rejoin block rate returns to
    ~1x the pre-fault rate.  See EXPERIMENTS.md §E7. *)

type row = {
  protocol : string;
  before_blocks_per_s : float;
  after_blocks_per_s : float;  (** Rate while the parties are down. *)
  degradation : float;
  recovery : float option;
      (** Post-rejoin rate / pre-fault rate; [None] for rows without a
          recovery phase. *)
  safety : bool;
}

val n : int
val run : ?quick:bool -> unit -> row list
val print : row list -> unit
