(* Experiment E7 — robust consensus (paper §1 "Robust consensus" and Table 1
   scenario 3): with up to n/3 parties refusing to participate, throughput
   degrades gracefully — to roughly the fraction of rounds with honest
   leaders, each corrupt-leader round finishing in O(delta_bnd) — and never
   to zero.  We crash n/3 parties halfway through the run and compare the
   block rate in the two halves.

   The recovery extension drives the same fault through the nemesis layer
   instead of kill_at: the n/3 parties crash at T1 and *recover* at T2,
   with 20% uniform message loss while they are down.  The recovery column
   is the post-rejoin block rate over the pre-fault rate — with the
   pool-resync sub-layer rehydrating the recovered parties it should be
   close to 1. *)

type row = {
  protocol : string;
  before_blocks_per_s : float;
  after_blocks_per_s : float;
  degradation : float;
  recovery : float option; (* post-rejoin rate / pre-fault rate *)
  safety : bool;
}

let n = 13

let split_rate (times : (int * float) list) ~mid ~duration =
  let before = List.length (List.filter (fun (_, t) -> t < mid) times) in
  let after = List.length (List.filter (fun (_, t) -> t >= mid) times) in
  ( float_of_int before /. mid,
    float_of_int after /. (duration -. mid) )

let window_rate (times : (int * float) list) ~from_ ~upto =
  let c =
    List.length (List.filter (fun (_, t) -> t >= from_ && t < upto) times)
  in
  float_of_int c /. (upto -. from_)

let run ?(quick = false) () =
  let duration = if quick then 60. else 240. in
  let mid = duration /. 2. in
  let kill_at =
    List.init (n / 3) (fun i -> ((3 * i) + 2, mid))
  in
  let base =
    {
      (Icc_core.Runner.default_scenario ~n ~seed:99) with
      Icc_core.Runner.duration;
      delay = Icc_core.Runner.Fixed_delay 0.04;
      epsilon = 0.4;
      delta_bnd = 1.0;
    }
  in
  let icc = Icc_core.Runner.run { base with Icc_core.Runner.kill_at } in
  let before, after =
    split_rate (Icc_sim.Metrics.finalizations icc.Icc_core.Runner.metrics)
      ~mid ~duration:icc.Icc_core.Runner.duration
  in
  (* Crash–recover through the nemesis: down during [t1, t2) under 20%
     loss, back up (and resynced) from t2 on.  The grace window after t2
     absorbs the catch-up burst so the recovery column measures steady
     post-rejoin throughput. *)
  let t1 = duration /. 3. and t2 = duration /. 2. in
  let grace = if quick then 5. else 10. in
  let script =
    Icc_sim.Fault.drop ~from_:t1 ~until:t2 0.2
    :: List.concat_map
         (fun i ->
           Icc_sim.Fault.crash_recover ~party:((3 * i) + 2) ~down:t1 ~up:t2)
         (List.init (n / 3) (fun i -> i))
  in
  let rec_run =
    Icc_core.Runner.run { base with Icc_core.Runner.nemesis = Some script }
  in
  let rec_times =
    Icc_sim.Metrics.finalizations rec_run.Icc_core.Runner.metrics
  in
  let pre_rate = window_rate rec_times ~from_:0. ~upto:t1 in
  let during_rate = window_rate rec_times ~from_:t1 ~upto:t2 in
  let post_rate =
    window_rate rec_times ~from_:(t2 +. grace)
      ~upto:rec_run.Icc_core.Runner.duration
  in
  [
    {
      protocol = "ICC0";
      before_blocks_per_s = before;
      after_blocks_per_s = after;
      degradation = after /. before;
      recovery = None;
      safety = icc.Icc_core.Runner.safety_ok;
    };
    {
      protocol = "ICC0+rec";
      before_blocks_per_s = pre_rate;
      after_blocks_per_s = during_rate;
      degradation = during_rate /. pre_rate;
      recovery = Some (post_rate /. pre_rate);
      safety = rec_run.Icc_core.Runner.safety_ok;
    };
  ]

let print rows =
  Printf.printf
    "== E7: graceful degradation — n/3 of %d parties crash mid-run ==\n" n;
  Printf.printf "%-10s %18s %18s %14s %10s %8s\n" "protocol" "blk/s before"
    "blk/s during" "during/before" "recovery" "safety";
  List.iter
    (fun r ->
      Printf.printf "%-10s %18.2f %18.2f %14.2f %10s %8b\n" r.protocol
        r.before_blocks_per_s r.after_blocks_per_s r.degradation
        (match r.recovery with
        | Some x -> Printf.sprintf "%.2f" x
        | None -> "-")
        r.safety)
    rows;
  print_endline
    "  claim (paper Table 1): with one third of nodes failed the block rate\n\
    \  drops to ~0.4x (0.45/1.10 small subnet, 0.16/0.41 large) — corrupt-\n\
    \  leader rounds finish in O(delta_bnd) instead of O(delta), throughput\n\
    \  never reaches zero.\n\
    \  recovery row: the same n/3 parties crash at T1 = duration/3 under 20%\n\
    \  link loss and recover at T2 = duration/2; pool-resync rehydrates them\n\
    \  and the post-rejoin rate (recovery column) returns to ~1x pre-fault."
