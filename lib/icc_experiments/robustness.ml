(* Experiment E7 — robust consensus (paper §1 "Robust consensus" and Table 1
   scenario 3): with up to n/3 parties refusing to participate, throughput
   degrades gracefully — to roughly the fraction of rounds with honest
   leaders, each corrupt-leader round finishing in O(delta_bnd) — and never
   to zero.  We crash n/3 parties halfway through the run and compare the
   block rate in the two halves. *)

type row = {
  protocol : string;
  before_blocks_per_s : float;
  after_blocks_per_s : float;
  degradation : float;
  safety : bool;
}

let n = 13

let split_rate (times : (int * float) list) ~mid ~duration =
  let before = List.length (List.filter (fun (_, t) -> t < mid) times) in
  let after = List.length (List.filter (fun (_, t) -> t >= mid) times) in
  ( float_of_int before /. mid,
    float_of_int after /. (duration -. mid) )

let run ?(quick = false) () =
  let duration = if quick then 60. else 240. in
  let mid = duration /. 2. in
  let kill_at =
    List.init (n / 3) (fun i -> ((3 * i) + 2, mid))
  in
  let icc =
    Icc_core.Runner.run
      {
        (Icc_core.Runner.default_scenario ~n ~seed:99) with
        Icc_core.Runner.duration;
        delay = Icc_core.Runner.Fixed_delay 0.04;
        epsilon = 0.4;
        delta_bnd = 1.0;
        kill_at;
      }
  in
  let before, after =
    split_rate (Icc_sim.Metrics.finalizations icc.Icc_core.Runner.metrics)
      ~mid ~duration:icc.Icc_core.Runner.duration
  in
  [
    {
      protocol = "ICC0";
      before_blocks_per_s = before;
      after_blocks_per_s = after;
      degradation = after /. before;
      safety = icc.Icc_core.Runner.safety_ok;
    };
  ]

let print rows =
  Printf.printf
    "== E7: graceful degradation — n/3 of %d parties crash mid-run ==\n" n;
  Printf.printf "%-10s %18s %18s %14s %8s\n" "protocol" "blk/s before"
    "blk/s after" "after/before" "safety";
  List.iter
    (fun r ->
      Printf.printf "%-10s %18.2f %18.2f %14.2f %8b\n" r.protocol
        r.before_blocks_per_s r.after_blocks_per_s r.degradation r.safety)
    rows;
  print_endline
    "  claim (paper Table 1): with one third of nodes failed the block rate\n\
    \  drops to ~0.4x (0.45/1.10 small subnet, 0.16/0.41 large) — corrupt-\n\
    \  leader rounds finish in O(delta_bnd) instead of O(delta), throughput\n\
    \  never reaches zero."
