(* Experiment E11 — Byzantine strategy x protocol resilience sweep.

   For every adversary strategy in the composable layer (DESIGN.md §3.8)
   and every protocol in the repo — ICC0/ICC1/ICC2 plus the PBFT /
   HotStuff / Tendermint baselines — run n = 7, t = 2 with f corrupt
   parties for f = 0..t and the overshoot f = t+1, on the identical
   network.  At f <= t every run must stay safe (monitor-verified for the
   ICC stack, prefix-consistency for the baselines); the table quantifies
   how much liveness each strategy costs each protocol (block rate
   relative to the protocol's own f = 0 rate).  The f = t+1 rows show the
   resilience boundary: beyond t the paper's bound no longer applies and
   safety may (but need not, per seed) break.

   Strategy notes: equivocation and adaptive corruption act through the
   protocol-layer hooks, which the baselines do not have — "equivocate"
   rows for the baselines measure the inert case (no degradation
   expected) and "adaptive" runs on the ICC stack only.  Withholding
   reaches the baselines at the wire through the harness kind
   classifier. *)

type row = {
  strategy : string;
  protocol : string;
  f : int;
  blocks_per_s : float;
  vs_honest : float;  (* blocks/s over the same protocol's f = 0 rate *)
  safety : bool;  (* monitor-verified for ICC, prefix-check for baselines *)
}

let n = 7
let t = 2
let delta = 0.05

(* The corrupt ids for f = 1, 2, 3 — spread across the ring so censor /
   crash strategies do not cluster on adjacent parties. *)
let corrupt_ids f = List.filteri (fun i _ -> i < f) [ 2; 5; 3 ]

type strategy = {
  name : string;
  script : duration:float -> int list -> Icc_sim.Adversary.script;
  icc_only : bool;
}

let strategies =
  [
    {
      name = "equivocate";
      script =
        (fun ~duration:_ ids ->
          List.map (fun id -> Icc_sim.Adversary.equivocate ~noisy:true id) ids);
      icc_only = false;
    };
    {
      name = "withhold";
      script =
        (fun ~duration:_ ids -> List.map Icc_sim.Adversary.withhold ids);
      icc_only = false;
    };
    {
      name = "withhold-p50";
      script =
        (fun ~duration:_ ids ->
          List.map (fun id -> Icc_sim.Adversary.withhold ~p:0.5 id) ids);
      icc_only = false;
    };
    {
      name = "censor";
      script =
        (fun ~duration:_ ids ->
          (* each corrupt party censors the three lowest honest ids *)
          let honest =
            List.filteri (fun i _ -> i < 3)
              (List.filter
                 (fun id -> not (List.mem id ids))
                 (List.init n (fun i -> i + 1)))
          in
          List.map (fun id -> Icc_sim.Adversary.censor ~dsts:honest id) ids);
      icc_only = false;
    };
    {
      name = "stealthy-delay";
      script =
        (fun ~duration:_ ids ->
          List.map (fun id -> Icc_sim.Adversary.delay ~by:0.3 id) ids);
      icc_only = false;
    };
    {
      name = "crash-hybrid";
      script =
        (fun ~duration ids ->
          (* Byzantine-vs-crash hybrid: down for the middle third *)
          List.map
            (fun id ->
              Icc_sim.Adversary.crash_window ~from_:(duration /. 3.)
                ~until:(2. *. duration /. 3.) id)
            ids);
      icc_only = false;
    };
    {
      name = "straggle";
      script =
        (fun ~duration:_ ids ->
          List.map (fun id -> Icc_sim.Adversary.straggle ~p:0.6 id) ids);
      icc_only = false;
    };
    {
      name = "adaptive";
      script =
        (fun ~duration:_ ids ->
          (* corrupt whoever wins rank 0, up to the same budget f *)
          match ids with
          | [] -> []
          | _ ->
              [
                Icc_sim.Adversary.adaptive ~rank:0
                  ~max_corrupt:(List.length ids)
                  (Icc_sim.Adversary.Equivocate { noisy = true });
              ]);
      icc_only = true;
    };
  ]

(* ------------------------------------------------------------ protocols *)

type outcome = { o_blocks_per_s : float; o_safe : bool }

let icc_scenario ~seed ~duration adversary =
  {
    (Icc_core.Runner.default_scenario ~n ~seed) with
    Icc_core.Runner.duration;
    t_corrupt = t;
    delay = Icc_core.Runner.Fixed_delay delta;
    epsilon = 0.15;
    delta_bnd = 0.5;
    monitor = Some (Icc_sim.Monitor.default_config ~delta ());
    adversary;
  }

let icc_outcome (r : Icc_core.Runner.result) =
  {
    o_blocks_per_s = r.Icc_core.Runner.blocks_per_s;
    o_safe =
      (r.Icc_core.Runner.safety_ok && r.Icc_core.Runner.p1_ok
      &&
      match r.Icc_core.Runner.monitor with
      | Some m -> Icc_sim.Monitor.ok m
      | None -> false);
  }

let baseline_scenario ~seed ~duration adversary =
  {
    (Icc_baselines.Harness.default_scenario ~n ~seed) with
    Icc_baselines.Harness.duration;
    delay = Icc_core.Runner.Fixed_delay delta;
    timeout = 1.0;
    adversary;
  }

let baseline_outcome (r : Icc_baselines.Harness.result) =
  {
    o_blocks_per_s = r.Icc_baselines.Harness.blocks_per_s;
    o_safe = r.Icc_baselines.Harness.safety_ok;
  }

let protocols =
  [
    ( "icc0",
      false,
      fun ~seed ~duration adv ->
        icc_outcome (Icc_core.Runner.run (icc_scenario ~seed ~duration adv)) );
    ( "icc1",
      false,
      fun ~seed ~duration adv ->
        icc_outcome (Icc_gossip.Icc1.run (icc_scenario ~seed ~duration adv)) );
    ( "icc2",
      false,
      fun ~seed ~duration adv ->
        icc_outcome (Icc_rbc.Icc2.run (icc_scenario ~seed ~duration adv)) );
    ( "pbft",
      true,
      fun ~seed ~duration adv ->
        baseline_outcome
          (Icc_baselines.Pbft.run (baseline_scenario ~seed ~duration adv)) );
    ( "hotstuff",
      true,
      fun ~seed ~duration adv ->
        baseline_outcome
          (Icc_baselines.Hotstuff.run (baseline_scenario ~seed ~duration adv)) );
    ( "tendermint",
      true,
      fun ~seed ~duration adv ->
        baseline_outcome
          (Icc_baselines.Tendermint.run (baseline_scenario ~seed ~duration adv))
    );
  ]

let run ?(quick = false) () =
  let duration = if quick then 12. else 40. in
  let seed = 11 in
  (* one honest reference run per protocol: the f = 0 row, shared by all
     strategies as the degradation denominator *)
  let honest =
    List.map
      (fun (proto, is_baseline, run_fn) ->
        (proto, is_baseline, run_fn, run_fn ~seed ~duration None))
      protocols
  in
  let honest_rows =
    List.map
      (fun (proto, _, _, o) ->
        {
          strategy = "(none)";
          protocol = proto;
          f = 0;
          blocks_per_s = o.o_blocks_per_s;
          vs_honest = 1.;
          safety = o.o_safe;
        })
      honest
  in
  let attack_rows =
    List.concat_map
      (fun s ->
        List.concat_map
          (fun (proto, is_baseline, run_fn, ref_outcome) ->
            if s.icc_only && is_baseline then []
            else
              List.map
                (fun f ->
                  let script = s.script ~duration (corrupt_ids f) in
                  let o = run_fn ~seed ~duration (Some script) in
                  {
                    strategy = s.name;
                    protocol = proto;
                    f;
                    blocks_per_s = o.o_blocks_per_s;
                    vs_honest =
                      (if ref_outcome.o_blocks_per_s > 0. then
                         o.o_blocks_per_s /. ref_outcome.o_blocks_per_s
                       else 0.);
                    safety = o.o_safe;
                  })
                [ 1; 2; t + 1 ])
          honest)
      strategies
  in
  honest_rows @ attack_rows

let print rows =
  Printf.printf
    "== E11: adversary strategy x protocol resilience sweep (n=%d, t=%d, \
     delta=%.0f ms) ==\n"
    n t (delta *. 1000.);
  Printf.printf "%-14s %-11s %3s %10s %10s %8s\n" "strategy" "protocol" "f"
    "blocks/s" "vs honest" "safety";
  List.iter
    (fun r ->
      Printf.printf "%-14s %-11s %3d %10.2f %10.2f %8s%s\n" r.strategy
        r.protocol r.f r.blocks_per_s r.vs_honest
        (if r.safety then "ok" else "VIOLATED")
        (if r.f > t then "  (overshoot f>t)" else ""))
    rows;
  let within = List.filter (fun r -> r.f <= t) rows in
  let bad = List.filter (fun r -> not r.safety) within in
  (if bad = [] then
     Printf.printf "safety: ok — every run at f <= t = %d is safe (%d runs)\n"
       t (List.length within)
   else begin
     Printf.printf "safety: VIOLATED at f <= t in %d run(s):\n" (List.length bad);
     List.iter
       (fun r ->
         Printf.printf "  %s x %s at f=%d\n" r.strategy r.protocol r.f)
       bad
   end);
  let overshoot_bad =
    List.filter (fun r -> r.f > t && not r.safety) rows
  in
  Printf.printf
    "overshoot f = t+1 = %d: %d of %d runs lost safety — the bound t < n/3 \
     is tight, not conservative\n"
    (t + 1)
    (List.length overshoot_bad)
    (List.length (List.filter (fun r -> r.f > t) rows));
  print_endline
    "  legend: vs honest = block rate over the same protocol's f=0 rate;\n\
    \  equivocate rows for pbft/hotstuff/tendermint measure the inert case\n\
    \  (no protocol-layer hooks); withhold reaches them at the wire via the\n\
    \  vote-kind classifier; adaptive (rank-0 leader corruption) runs on\n\
    \  the ICC stack only.  hotstuff has no block-fetch path, so a\n\
    \  straggling sender's lost proposals stall execution outright (safe\n\
    \  but not live) where ICC's pool resync recovers."
