(* Experiment E10 — large-n scale-out (committee sizes in the hundreds).

   The paper's deployment targets subnets of modest size, but the
   protocol's O(n^2) expected message complexity (§1) only translates to a
   usable system if the per-message processing cost at each party stays
   flat as n grows.  This experiment drives ICC0 (direct broadcast) and
   ICC1 (gossip) at n in {100, 250, 500, 1000} with the online invariant
   monitor attached, and reports

     - wall-clock per decided round, and
     - messages per party per round, and msgs / (rounds * n^2)

   A flat us/msg column across the sweep is the slot-ring/calendar-queue
   refactor's claim: traffic grows quadratically by design, per-message
   work does not.  The normalized column tracks E2's O(n^2) bound at an
   order of magnitude larger n.

   A second leg re-dumps short monitored runs to a JSONL trace and pushes
   them through the offline [icc analyze] pipeline, checking that the
   monitor verdict survives the round-trip.  The traced leg is capped at
   n = 250: a fully-detailed gossip trace grows ~n^2 per round (an
   n = 1000 ICC1 dump is tens of GB), which is exactly why the wall-clock
   leg runs with the monitor on a private bus instead. *)

type row = {
  sc_proto : string;
  sc_n : int;
  sc_rounds : int;  (* rounds actually decided *)
  sc_wall_s : float;
  sc_wall_per_round : float;
  sc_msgs : int;
  sc_msgs_per_party_per_round : float;
  sc_normalized_n2 : float;  (* msgs / (rounds * n^2) *)
  sc_monitor_ok : bool;
  sc_safety_ok : bool;
}

(* Per-phase attribution from the self-profiler: where a party's host
   wall-clock actually goes at scale, bucketed by span-name prefix
   (crypto.*, pool.*, gossip.*/net.*, engine.*, rest).  Measured on its
   own short profiled leg so the wall-clock rows above stay free of
   profiling overhead. *)
type phase_row = {
  ph_proto : string;
  ph_n : int;
  ph_total_self_s : float;
  ph_crypto_pct : float;
  ph_pool_pct : float;
  ph_net_pct : float;
  ph_engine_pct : float;
  ph_other_pct : float;
}

type trace_check = {
  tc_proto : string;
  tc_n : int;
  tc_events : int;  (* parsed JSONL lines *)
  tc_rounds_seen : int;  (* per-round pipeline rows recovered offline *)
  tc_analyze_ok : bool;  (* offline monitor re-run found no fatal violation *)
}

let delta = 0.25

let run_fn = function
  | "ICC0" -> Icc_core.Runner.run
  | "ICC1" -> fun s -> Icc_gossip.Icc1.run s
  | other -> invalid_arg ("Scale.run_fn: " ^ other)

let scenario ~n ~rounds ~monitor ~trace =
  {
    (Icc_core.Runner.default_scenario ~n ~seed:(911 + n)) with
    Icc_core.Runner.duration = 3600.;
    max_rounds = Some rounds;
    delay = Icc_core.Runner.Fixed_delay 0.03;
    epsilon = 0.1;
    delta_bnd = delta;
    monitor =
      (if monitor then Some (Icc_sim.Monitor.default_config ~delta ()) else None);
    trace;
  }

let run_one ~proto ~n ~rounds =
  let sc = scenario ~n ~rounds ~monitor:true ~trace:None in
  let t0 =
    (Unix.gettimeofday ()
    [@icc.allow
      "d3-banned-fn: E10 measures host wall-clock per round — the \
       measurement itself, never fed back into the simulation"])
  in
  let r = run_fn proto sc in
  let wall =
    (Unix.gettimeofday ()
    [@icc.allow
      "d3-banned-fn: host-time measurement endpoint, see t0 above"])
    -. t0
  in
  let decided = max 1 r.Icc_core.Runner.rounds_decided in
  let msgs = Icc_sim.Metrics.total_msgs r.Icc_core.Runner.metrics in
  {
    sc_proto = proto;
    sc_n = n;
    sc_rounds = decided;
    sc_wall_s = wall;
    sc_wall_per_round = wall /. float_of_int decided;
    sc_msgs = msgs;
    sc_msgs_per_party_per_round =
      float_of_int msgs /. float_of_int (n * decided);
    sc_normalized_n2 = float_of_int msgs /. float_of_int (decided * n * n);
    sc_monitor_ok =
      (match r.Icc_core.Runner.monitor with
      | Some m -> Icc_sim.Monitor.ok m
      | None -> false);
    sc_safety_ok = r.Icc_core.Runner.safety_ok;
  }

(* Dump a short monitored run to JSONL, then replay it offline. *)
let trace_roundtrip ~proto ~n ~rounds =
  let file = Filename.temp_file "icc_scale_" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let oc = open_out file in
      let tr = Icc_sim.Trace.create () in
      Icc_sim.Trace.subscribe tr (fun ~time ev ->
          output_string oc (Icc_sim.Trace.to_json ~time ev);
          output_char oc '\n');
      let sc = scenario ~n ~rounds ~monitor:true ~trace:(Some tr) in
      let _ = run_fn proto sc in
      close_out oc;
      let config = Icc_sim.Monitor.default_config ~delta () in
      let report = Analyze.analyze ~config file in
      {
        tc_proto = proto;
        tc_n = n;
        tc_events = Array.length report.Analyze.load.Icc_sim.Replay.entries;
        tc_rounds_seen = List.length report.Analyze.rounds;
        tc_analyze_ok =
          Analyze.ok report
          && report.Analyze.load.Icc_sim.Replay.errors = [];
      })

let phase_leg ~proto ~n ~rounds =
  let sc = scenario ~n ~rounds ~monitor:false ~trace:None in
  Icc_obs.Profile.reset ();
  Icc_obs.Profile.set_enabled true;
  let _ = run_fn proto sc in
  Icc_obs.Profile.set_enabled false;
  let bucket name =
    match String.index_opt name '.' with
    | None -> `Other
    | Some i -> (
        match String.sub name 0 i with
        | "crypto" -> `Crypto
        | "pool" -> `Pool
        | "net" | "gossip" | "rbc" -> `Net
        | "engine" -> `Engine
        | _ -> `Other)
  in
  let crypto = ref 0. and pool = ref 0. and net = ref 0. in
  let engine = ref 0. and other = ref 0. in
  List.iter
    (fun st ->
      let cell =
        match bucket st.Icc_obs.Profile.sp_name with
        | `Crypto -> crypto
        | `Pool -> pool
        | `Net -> net
        | `Engine -> engine
        | `Other -> other
      in
      cell := !cell +. st.Icc_obs.Profile.sp_self_s)
    (Icc_obs.Profile.stats ());
  let total = !crypto +. !pool +. !net +. !engine +. !other in
  let pct v = if total = 0. then 0. else 100. *. v /. total in
  {
    ph_proto = proto;
    ph_n = n;
    ph_total_self_s = total;
    ph_crypto_pct = pct !crypto;
    ph_pool_pct = pct !pool;
    ph_net_pct = pct !net;
    ph_engine_pct = pct !engine;
    ph_other_pct = pct !other;
  }

let run ?(quick = false) () =
  let plan =
    (* (n, wall-clock rounds): fewer rounds at the top end keep the full
       sweep tractable — the per-round column is what the experiment
       reports, and it stabilizes within a handful of rounds. *)
    if quick then [ (50, 10); (100, 10) ]
    else [ (100, 50); (250, 50); (500, 50); (1000, 10) ]
  in
  let rows =
    List.concat_map
      (fun (n, rounds) ->
        [ run_one ~proto:"ICC0" ~n ~rounds; run_one ~proto:"ICC1" ~n ~rounds ])
      plan
  in
  let trace_ns = if quick then [ 50 ] else [ 100; 250 ] in
  let checks =
    List.concat_map
      (fun n ->
        (* a detailed ICC1 dump is ~125k events per round at n = 250 —
           3 rounds keep the temp file in the hundreds of MB *)
        let rounds = if n > 100 then 3 else 5 in
        [
          trace_roundtrip ~proto:"ICC0" ~n ~rounds;
          trace_roundtrip ~proto:"ICC1" ~n ~rounds;
        ])
      trace_ns
  in
  let phase_ns = if quick then [ 50 ] else [ 100; 250 ] in
  let phases =
    List.concat_map
      (fun n ->
        let rounds = if n > 100 then 3 else 5 in
        [ phase_leg ~proto:"ICC0" ~n ~rounds; phase_leg ~proto:"ICC1" ~n ~rounds ])
      phase_ns
  in
  (rows, checks, phases)

let print (rows, checks, phases) =
  print_endline "== E10: large-n scale-out (monitor attached) ==";
  Printf.printf "%-6s %6s %7s %10s %12s %12s %14s %10s %8s %8s\n" "proto" "n"
    "rounds" "wall (s)" "s/round" "messages" "msgs/party/rd" "msgs/rn^2"
    "monitor" "safety";
  List.iter
    (fun r ->
      Printf.printf "%-6s %6d %7d %10.2f %12.4f %12d %14.1f %10.2f %8s %8s\n"
        r.sc_proto r.sc_n r.sc_rounds r.sc_wall_s r.sc_wall_per_round r.sc_msgs
        r.sc_msgs_per_party_per_round r.sc_normalized_n2
        (if r.sc_monitor_ok then "ok" else "FAIL")
        (if r.sc_safety_ok then "ok" else "FAIL"))
    rows;
  print_endline "-- trace round-trip through `icc analyze` (5 rounds) --";
  Printf.printf "%-6s %6s %10s %12s %8s\n" "proto" "n" "events" "rounds-seen"
    "analyze";
  List.iter
    (fun c ->
      Printf.printf "%-6s %6d %10d %12d %8s\n" c.tc_proto c.tc_n c.tc_events
        c.tc_rounds_seen
        (if c.tc_analyze_ok then "ok" else "FAIL"))
    checks;
  print_endline
    "-- per-phase attribution (self-profiler, separate short runs) --";
  Printf.printf "%-6s %6s %10s %8s %8s %10s %8s %8s
" "proto" "n" "self (s)"
    "crypto" "pool" "net+gossip" "engine" "other";
  List.iter
    (fun p ->
      Printf.printf "%-6s %6d %10.3f %7.1f%% %7.1f%% %9.1f%% %7.1f%% %7.1f%%
"
        p.ph_proto p.ph_n p.ph_total_self_s p.ph_crypto_pct p.ph_pool_pct
        p.ph_net_pct p.ph_engine_pct p.ph_other_pct)
    phases;
  print_endline
    "  claim: messages grow O(n^2) (flat msgs/rn^2 column) while per-round\n\
    \  wall-clock grows no faster than the traffic — per-message processing\n\
    \  stays amortized O(1) through pool, engine, metrics and codec."
