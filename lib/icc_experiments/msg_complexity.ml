(* Experiment E2 — message complexity per round (paper §1):

     "In the worst case, the message complexity is O(n^3).  However ... in
      any round where the network is synchronous, the expected message
      complexity is O(n^2)."

   We count unicast transmissions by honest parties per finished round for
   a sweep of n, under (a) synchronous honest execution and (b) an
   equivocating Byzantine coalition, and report the per-round count divided
   by n^2.  A flat normalized column in case (a) is the O(n^2) claim; the
   adversarial column may rise towards an extra factor of n. *)

type row = {
  n : int;
  scenario : string;
  msgs_per_round : float;
  normalized_n2 : float; (* msgs / n^2 *)
}

let run_one ~quick ~n ~adversarial =
  let t = Icc_crypto.Keygen.max_corrupt ~n in
  (* Noisy equivocators (Adversary script): propose conflicting blocks and
     share everything, inflating the per-round message count. *)
  let adversary =
    if adversarial then
      Some
        (List.init t (fun i ->
             Icc_sim.Adversary.equivocate ~noisy:true ((i * 2) + 2)))
    else None
  in
  let rounds = if quick then 10 else 30 in
  let scenario =
    {
      (Icc_core.Runner.default_scenario ~n ~seed:(77 + n)) with
      Icc_core.Runner.duration = 3600.;
      max_rounds = Some rounds;
      delay = Icc_core.Runner.Fixed_delay 0.03;
      epsilon = 0.1;
      delta_bnd = 0.25;
      t_corrupt = t;
      adversary;
    }
  in
  let r = Icc_core.Runner.run scenario in
  let per_round =
    float_of_int (Icc_sim.Metrics.total_msgs r.Icc_core.Runner.metrics)
    /. float_of_int (max 1 r.Icc_core.Runner.rounds_decided)
  in
  {
    n;
    scenario = (if adversarial then "equivocators" else "synchronous honest");
    msgs_per_round = per_round;
    normalized_n2 = per_round /. float_of_int (n * n);
  }

let run ?(quick = false) () =
  let sizes = if quick then [ 4; 7; 13 ] else [ 4; 7; 10; 13; 19; 28; 40 ] in
  List.concat_map
    (fun n ->
      [ run_one ~quick ~n ~adversarial:false; run_one ~quick ~n ~adversarial:true ])
    sizes

let print rows =
  print_endline "== E2: message complexity per round ==";
  Printf.printf "%-6s %-22s %16s %12s\n" "n" "scenario" "msgs/round" "msgs/n^2";
  List.iter
    (fun r ->
      Printf.printf "%-6d %-22s %16.0f %12.2f\n" r.n r.scenario
        r.msgs_per_round r.normalized_n2)
    rows;
  print_endline
    "  claim: msgs/n^2 stays bounded as n grows in synchronous honest rounds\n\
    \  (O(n^2) w.h.p.); Byzantine equivocation raises the constant (worst\n\
    \  case O(n^3))."
