(** Experiment E10 — large-n scale-out: ICC0/ICC1 at n in {100..1000}
    with the invariant monitor attached; per-round wall-clock and
    messages/party against the O(n^2) bound, plus JSONL-trace round-trips
    through the offline [icc analyze] pipeline.  See EXPERIMENTS.md §E10. *)

type row = {
  sc_proto : string;
  sc_n : int;
  sc_rounds : int;
  sc_wall_s : float;
  sc_wall_per_round : float;
  sc_msgs : int;
  sc_msgs_per_party_per_round : float;
  sc_normalized_n2 : float;
  sc_monitor_ok : bool;
  sc_safety_ok : bool;
}

type phase_row = {
  ph_proto : string;
  ph_n : int;
  ph_total_self_s : float;  (** sum of span self-times over the run *)
  ph_crypto_pct : float;  (** [crypto.*] share of self-time *)
  ph_pool_pct : float;  (** [pool.*] *)
  ph_net_pct : float;  (** [net.*] + [gossip.*] + [rbc.*] *)
  ph_engine_pct : float;  (** [engine.*] *)
  ph_other_pct : float;  (** everything else ([party.*], [codec.*], ...) *)
}
(** Where host wall-clock goes at scale, from the self-profiler on a
    separate short leg (the wall-clock rows never run profiled). *)

type trace_check = {
  tc_proto : string;
  tc_n : int;
  tc_events : int;
  tc_rounds_seen : int;
  tc_analyze_ok : bool;
}

val run_one : proto:string -> n:int -> rounds:int -> row
val trace_roundtrip : proto:string -> n:int -> rounds:int -> trace_check
val phase_leg : proto:string -> n:int -> rounds:int -> phase_row
val run : ?quick:bool -> unit -> row list * trace_check list * phase_row list
val print : row list * trace_check list * phase_row list -> unit
