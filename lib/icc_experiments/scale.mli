(** Experiment E10 — large-n scale-out: ICC0/ICC1 at n in {100..1000}
    with the invariant monitor attached; per-round wall-clock and
    messages/party against the O(n^2) bound, plus JSONL-trace round-trips
    through the offline [icc analyze] pipeline.  See EXPERIMENTS.md §E10. *)

type row = {
  sc_proto : string;
  sc_n : int;
  sc_rounds : int;
  sc_wall_s : float;
  sc_wall_per_round : float;
  sc_msgs : int;
  sc_msgs_per_party_per_round : float;
  sc_normalized_n2 : float;
  sc_monitor_ok : bool;
  sc_safety_ok : bool;
}

type trace_check = {
  tc_proto : string;
  tc_n : int;
  tc_events : int;
  tc_rounds_seen : int;
  tc_analyze_ok : bool;
}

val run_one : proto:string -> n:int -> rounds:int -> row
val trace_roundtrip : proto:string -> n:int -> rounds:int -> trace_check
val run : ?quick:bool -> unit -> row list * trace_check list
val print : row list * trace_check list -> unit
