(* Experiment E8 — intermittent synchrony (paper §3.3):

     "even if the network remains asynchronous for many rounds, as soon as
      it becomes synchronous for even a short period of time, the commands
      from the payloads of all of the rounds between synchronous intervals
      will be output by all honest parties."

   The adversary holds every message for the first part of the run.  We
   report finalizations per window: zero during asynchrony, a full-rate
   resumption immediately after, and safety throughout. *)

type row = {
  window_start : float;
  window_end : float;
  finalizations : int;
}

type outcome = {
  rows : row list;
  safety : bool;
  p1 : bool;
  async_until : float;
}

let run ?(quick = false) () =
  let duration = if quick then 24. else 60. in
  let async_until = duration /. 3. in
  let r =
    Icc_core.Runner.run
      {
        (Icc_core.Runner.default_scenario ~n:7 ~seed:55) with
        Icc_core.Runner.duration;
        delay = Icc_core.Runner.Fixed_delay 0.03;
        epsilon = 0.1;
        delta_bnd = 0.3;
        async_until;
        t_corrupt = 2;
      }
  in
  let times =
    List.map snd (Icc_sim.Metrics.finalizations r.Icc_core.Runner.metrics)
  in
  let w = duration /. 12. in
  let rows =
    List.init 12 (fun i ->
        let lo = w *. float_of_int i and hi = w *. float_of_int (i + 1) in
        {
          window_start = lo;
          window_end = hi;
          finalizations =
            List.length (List.filter (fun t -> t >= lo && t < hi) times);
        })
  in
  { rows; safety = r.Icc_core.Runner.safety_ok; p1 = r.Icc_core.Runner.p1_ok;
    async_until }

let print (o : outcome) =
  Printf.printf
    "== E8: adversarial asynchrony until t=%.0f s, then synchrony ==\n"
    o.async_until;
  List.iter
    (fun r ->
      Printf.printf "  [%5.1f, %5.1f) %-50s %d\n" r.window_start r.window_end
        (String.make (min 50 r.finalizations) '#')
        r.finalizations)
    o.rows;
  Printf.printf "  safety through asynchrony: %b; P1: %b\n" o.safety o.p1;
  print_endline
    "  claim: safety never depends on synchrony; commits resume at full\n\
    \  rate within one round of the synchrony window opening."
