(* Experiment E3 — round complexity (paper §1):

     "For a static adversary, this complexity is O(1) for the ICC protocols
      in expectation and O(log n) with high probability."

   A round's block is finalized immediately when its leader is honest and no
   honest party notarization-shared a conflicting block.  With a fraction
   beta of equivocating Byzantine parties, each round independently has an
   honest leader with probability 1 - beta, so the number of rounds until a
   directly-finalized round is geometric: expectation 1/(1-beta) = O(1).
   Rounds led by equivocators may split notarization shares and decide only
   in a later round (the paper's "a decision for this round will be taken in
   a later round").  We measure the fraction of directly finalized rounds
   and the longest gap. *)

type row = {
  n : int;
  beta : float; (* equivocating fraction *)
  rounds : int;
  finalized_fraction : float;
  max_gap : int; (* longest run of rounds without a finalization *)
  blocks_per_s : float;
}

let run_one ~quick ~n ~beta =
  let corrupt = int_of_float (beta *. float_of_int n) in
  let scenario =
    {
      (Icc_core.Runner.default_scenario ~n ~seed:(31 + corrupt)) with
      Icc_core.Runner.duration = (if quick then 25. else 90.);
      delay = Icc_core.Runner.Fixed_delay 0.04;
      epsilon = 0.15;
      delta_bnd = 0.3;
      t_corrupt = Icc_crypto.Keygen.max_corrupt ~n;
      (* Stealthy equivocators (Adversary script): split the honest quorum
         with conflicting proposals while withholding their own shares, so
         rounds they lead decide only later. *)
      adversary =
        (match corrupt with
        | 0 -> None
        | _ ->
            Some
              (List.concat_map
                 (fun i ->
                   let id = (3 * i) + 1 in
                   [
                     Icc_sim.Adversary.equivocate id;
                     Icc_sim.Adversary.withhold ~notar:true ~final:true id;
                   ])
                 (List.init corrupt Fun.id)));
    }
  in
  let r = Icc_core.Runner.run scenario in
  let finalized_rounds = r.Icc_core.Runner.directly_finalized in
  let rounds = r.Icc_core.Runner.rounds_decided in
  let max_gap =
    let rec go prev gaps = function
      | [] -> gaps
      | k :: rest -> go k (max gaps (k - prev - 1)) rest
    in
    go 0 0 finalized_rounds
  in
  {
    n;
    beta;
    rounds;
    finalized_fraction =
      float_of_int (List.length finalized_rounds) /. float_of_int (max 1 rounds);
    max_gap;
    blocks_per_s = r.Icc_core.Runner.blocks_per_s;
  }

let run ?(quick = false) () =
  let n = 13 in
  List.map (fun beta -> run_one ~quick ~n ~beta) [ 0.0; 0.08; 0.16; 0.30 ]

let print rows =
  print_endline
    "== E3: round complexity under equivocating fractions (n=13) ==";
  Printf.printf "%-6s %-7s %8s %20s %9s %10s\n" "n" "beta" "rounds"
    "finalized fraction" "max gap" "blocks/s";
  List.iter
    (fun r ->
      Printf.printf "%-6d %-7.2f %8d %20.2f %9d %10.2f\n" r.n r.beta r.rounds
        r.finalized_fraction r.max_gap r.blocks_per_s)
    rows;
  print_endline
    "  claim: expected rounds-to-decision O(1) — the finalized fraction\n\
    \  stays near 1-beta and gaps stay O(log n) even at beta ~ 1/3."
