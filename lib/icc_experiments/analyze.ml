(* Offline trace analysis report — the printing layer of `icc analyze`.
   All aggregation lives in Icc_sim.Replay; this module renders the
   waterfall, bandwidth matrices, amplification factors and critical path
   as terminal tables. *)

type report = {
  path : string;
  load : Icc_sim.Replay.load_result;
  monitor : Icc_sim.Monitor.t;
  bandwidth : Icc_sim.Replay.bandwidth;
  rounds : Icc_sim.Replay.round_row list;
  amplification : Icc_sim.Replay.amplification;
  critical_round : int option;
  critical_path : Icc_sim.Replay.path_step list;
}

(* Pick the round whose critical path we walk by default: the last round
   that actually decided tells the most complete story. *)
let default_critical_round rounds =
  List.fold_left
    (fun acc (r : Icc_sim.Replay.round_row) ->
      if r.r_decided <> None then Some r.r_round else acc)
    None rounds

let analyze ?config ?round path =
  let load = Icc_sim.Replay.load_file path in
  let monitor = Icc_sim.Replay.monitor ?config load.entries in
  let rounds = Icc_sim.Replay.rounds load.entries in
  let critical_round =
    match round with Some r -> Some r | None -> default_critical_round rounds
  in
  {
    path;
    load;
    monitor;
    bandwidth = Icc_sim.Replay.bandwidth load.entries;
    rounds;
    amplification = Icc_sim.Replay.amplification load.entries;
    critical_round;
    critical_path =
      (match critical_round with
      | Some round -> Icc_sim.Replay.critical_path load.entries ~round
      | None -> []);
  }

let ok r = Icc_sim.Monitor.ok r.monitor

(* --- rendering --------------------------------------------------------- *)

let opt_delta later earlier =
  match (later, earlier) with
  | Some l, Some e -> Printf.sprintf "%8.4f" (l -. e)
  | _ -> "       -"

let opt_time = function
  | Some t -> Printf.sprintf "%9.4f" t
  | None -> "        -"

let human_bytes b =
  if b >= 10_000_000 then Printf.sprintf "%.1fMB" (float_of_int b /. 1e6)
  else if b >= 10_000 then Printf.sprintf "%.1fkB" (float_of_int b /. 1e3)
  else Printf.sprintf "%dB" b

let print_header r =
  Printf.printf "trace    %s\n" r.path;
  Printf.printf "events   %d parsed" (Array.length r.load.entries);
  (match r.load.errors with
  | [] -> print_newline ()
  | errors ->
      Printf.printf ", %d unparseable line%s (first: line %d: %s)\n"
        (List.length errors)
        (if List.length errors = 1 then "" else "s")
        (1 + fst (List.hd errors))
        (snd (List.hd errors)));
  Printf.printf "parties  %d\n" r.bandwidth.bw_n

let print_monitor r =
  print_newline ();
  print_endline (Icc_sim.Monitor.report r.monitor)

(* Per-round pipeline waterfall: per-stage deltas, then p50/p99 rows over
   the rounds that completed each stage. *)
let print_waterfall r =
  print_newline ();
  print_endline "round pipeline (seconds; deltas between stage arrivals)";
  print_endline
    "round      entry    +propose  +notarize  +finalize   +decided";
  let d_propose = ref [] and d_notarize = ref [] in
  let d_finalize = ref [] and d_decided = ref [] in
  let push acc later earlier =
    match (later, earlier) with
    | Some l, Some e -> acc := (l -. e) :: !acc
    | _ -> ()
  in
  List.iter
    (fun (row : Icc_sim.Replay.round_row) ->
      push d_propose row.r_propose row.r_entry;
      push d_notarize row.r_notarize row.r_propose;
      push d_finalize row.r_finalize row.r_notarize;
      push d_decided row.r_decided row.r_entry;
      Printf.printf "%5d  %s   %s   %s   %s   %s\n" row.r_round
        (opt_time row.r_entry)
        (opt_delta row.r_propose row.r_entry)
        (opt_delta row.r_notarize row.r_propose)
        (opt_delta row.r_finalize row.r_notarize)
        (opt_delta row.r_decided row.r_entry))
    r.rounds;
  let stat name samples =
    (* sort once, query both ranks from the sorted view *)
    if samples <> [] then begin
      let sorted = Icc_sim.Metrics.sorted_samples samples in
      Printf.printf "%s  p50 %.4f  p99 %.4f  (n=%d)\n" name
        (Icc_sim.Metrics.percentile_of_sorted 50. sorted)
        (Icc_sim.Metrics.percentile_of_sorted 99. sorted)
        (List.length samples)
    end
  in
  stat "entry->propose " !d_propose;
  stat "propose->notar " !d_notarize;
  stat "notar->finalize" !d_finalize;
  stat "entry->decided " !d_decided

let print_bandwidth r =
  let bw = r.bandwidth in
  print_newline ();
  Printf.printf "bandwidth: %d msgs, %s total\n" bw.bw_total_msgs
    (human_bytes bw.bw_total_bytes);
  print_endline "by kind:";
  List.iter
    (fun (kind, msgs, bytes) ->
      Printf.printf "  %-18s %8d msgs  %10s\n" kind msgs (human_bytes bytes))
    bw.bw_by_kind;
  if bw.bw_n > 0 && bw.bw_n <= 16 then begin
    print_endline "bytes src -> dst (broadcast spread over recipients):";
    print_string "        ";
    for dst = 1 to bw.bw_n do
      Printf.printf "%9s" (Printf.sprintf "->%d" dst)
    done;
    print_string "      sent\n";
    for src = 1 to bw.bw_n do
      Printf.printf "  p%-3d  " src;
      for dst = 1 to bw.bw_n do
        Printf.printf "%9s"
          (if src = dst then "." else human_bytes bw.bw_bytes.(src).(dst))
      done;
      Printf.printf "%10s\n" (human_bytes bw.bw_sent_bytes.(src))
    done;
    print_string "  recv  ";
    for dst = 1 to bw.bw_n do
      Printf.printf "%9s" (human_bytes bw.bw_recv_bytes.(dst))
    done;
    print_newline ()
  end
  else if bw.bw_n > 16 then
    Printf.printf "(per-party matrix suppressed for n = %d > 16)\n" bw.bw_n

let print_amplification r =
  let a = r.amplification in
  print_newline ();
  Printf.printf "amplification: %d blocks decided" a.amp_decided;
  if a.amp_decided > 0 then
    Printf.printf ", %.1f msgs/block, %s/block" a.amp_msgs_per_block
      (human_bytes (int_of_float a.amp_bytes_per_block));
  print_newline ();
  if a.amp_gossip_publish > 0 then
    Printf.printf
      "  gossip: %d publish, %d request, %d acquire (%.2f acquires/publish)\n"
      a.amp_gossip_publish a.amp_gossip_request a.amp_gossip_acquire
      a.amp_acquire_per_publish;
  if a.amp_rbc_fragments > 0 || a.amp_rbc_echoes > 0 then
    Printf.printf
      "  rbc: %d fragments, %d echoes, %d reconstructs, %d inconsistent\n"
      a.amp_rbc_fragments a.amp_rbc_echoes a.amp_rbc_reconstructs
      a.amp_rbc_inconsistent

(* Nemesis / recovery summary: what the fault layer did to this run and
   how much resync traffic it took to repair. *)
let print_faults r =
  let drops = ref 0 and dups = ref 0 and reorders = ref 0 in
  let link_downs = ref 0 and crashes = ref [] and recovers = ref [] in
  let summaries = ref 0 and requests = ref 0 and replies = ref 0 in
  let resent = ref 0 in
  let corrupts = ref [] and equivs = ref 0 and withholds = ref 0 in
  let censors = ref 0 and delays = ref 0 and straggles = ref 0 in
  Array.iter
    (fun (e : Icc_sim.Replay.entry) ->
      match e.Icc_sim.Replay.event with
      | Icc_sim.Trace.Fault_drop _ -> incr drops
      | Icc_sim.Trace.Fault_duplicate _ -> incr dups
      | Icc_sim.Trace.Fault_reorder _ -> incr reorders
      | Icc_sim.Trace.Fault_link_down _ -> incr link_downs
      | Icc_sim.Trace.Fault_crash { party } -> crashes := party :: !crashes
      | Icc_sim.Trace.Fault_recover { party } -> recovers := party :: !recovers
      | Icc_sim.Trace.Resync_summary _ -> incr summaries
      | Icc_sim.Trace.Resync_request _ -> incr requests
      | Icc_sim.Trace.Resync_reply { count; _ } ->
          incr replies;
          resent := !resent + count
      | Icc_sim.Trace.Adv_corrupt { party; _ } -> corrupts := party :: !corrupts
      | Icc_sim.Trace.Adv_equivocate _ -> incr equivs
      | Icc_sim.Trace.Adv_withhold _ -> incr withholds
      | Icc_sim.Trace.Adv_censor _ -> incr censors
      | Icc_sim.Trace.Adv_delay _ -> incr delays
      | Icc_sim.Trace.Adv_straggle _ -> incr straggles
      | Icc_sim.Trace.Run_start _ | Icc_sim.Trace.Run_end _
      | Icc_sim.Trace.Engine_dispatch _ | Icc_sim.Trace.Net_send _
      | Icc_sim.Trace.Net_deliver _ | Icc_sim.Trace.Net_hold _
      | Icc_sim.Trace.Gossip_publish _ | Icc_sim.Trace.Gossip_request _
      | Icc_sim.Trace.Gossip_acquire _ | Icc_sim.Trace.Rbc_fragment _
      | Icc_sim.Trace.Rbc_echo _ | Icc_sim.Trace.Rbc_reconstruct _
      | Icc_sim.Trace.Rbc_inconsistent _ | Icc_sim.Trace.Round_entry _
      | Icc_sim.Trace.Propose _ | Icc_sim.Trace.Notarize _
      | Icc_sim.Trace.Finalize _ | Icc_sim.Trace.Beacon_share _
      | Icc_sim.Trace.Commit _ | Icc_sim.Trace.Block_decided _
      | Icc_sim.Trace.Protocol_error _ | Icc_sim.Trace.Monitor_violation _
      | Icc_sim.Trace.Monitor_stall _ | Icc_sim.Trace.Monitor_clear _
      | Icc_sim.Trace.Prof_span _ | Icc_sim.Trace.Prof_counter _ -> ())
    r.load.Icc_sim.Replay.entries;
  let total_faults = !drops + !dups + !reorders + !link_downs in
  if total_faults > 0 || !crashes <> [] || !summaries > 0 then begin
    print_newline ();
    Printf.printf
      "nemesis: %d drops, %d duplicates, %d reorders, %d link holds\n" !drops
      !dups !reorders !link_downs;
    (if !crashes <> [] || !recovers <> [] then
       let ids l =
         String.concat "," (List.map string_of_int (List.sort_uniq compare l))
       in
       Printf.printf "  crashes: %d (parties %s), recoveries: %d (parties %s)\n"
         (List.length !crashes) (ids !crashes) (List.length !recovers)
         (ids !recovers));
    if !summaries > 0 then
      Printf.printf
        "  resync: %d summaries, %d requests, %d replies (%d artifacts resent)\n"
        !summaries !requests !replies !resent
  end;
  let total_adv = !equivs + !withholds + !censors + !delays + !straggles in
  if !corrupts <> [] || total_adv > 0 then begin
    print_newline ();
    let ids l =
      String.concat "," (List.map string_of_int (List.sort_uniq Int.compare l))
    in
    Printf.printf "adversary: %d corruption%s (parties %s)\n"
      (List.length (List.sort_uniq Int.compare !corrupts))
      (if List.length (List.sort_uniq Int.compare !corrupts) = 1 then ""
       else "s")
      (ids !corrupts);
    Printf.printf
      "  %d equivocations, %d withholds, %d censored, %d delayed, %d straggled\n"
      !equivs !withholds !censors !delays !straggles
  end

(* Satellite of the adversary layer: when the monitor caught a safety
   violation, dump the offending adv-*/monitor-* event window around each
   fatal violation so the attack is reproducible from the trace alone —
   rounds, parties and digests all appear verbatim in the JSONL lines. *)
let print_violation_window r =
  let fatal = Icc_sim.Monitor.fatal_violations r.monitor in
  if fatal <> [] then begin
    let entries = r.load.Icc_sim.Replay.entries in
    let is_relevant ~lo ~hi (e : Icc_sim.Replay.entry) =
      let in_window round = round >= lo && round <= hi in
      match e.Icc_sim.Replay.event with
      | Icc_sim.Trace.Adv_corrupt { round; _ }
      | Icc_sim.Trace.Adv_equivocate { round; _ }
      | Icc_sim.Trace.Adv_withhold { round; _ }
      | Icc_sim.Trace.Monitor_violation { round; _ }
      | Icc_sim.Trace.Notarize { round; _ }
      | Icc_sim.Trace.Finalize { round; _ } ->
          in_window round
      | Icc_sim.Trace.Adv_censor _ | Icc_sim.Trace.Adv_delay _
      | Icc_sim.Trace.Adv_straggle _ | Icc_sim.Trace.Run_start _
      | Icc_sim.Trace.Run_end _ | Icc_sim.Trace.Engine_dispatch _
      | Icc_sim.Trace.Net_send _ | Icc_sim.Trace.Net_deliver _
      | Icc_sim.Trace.Net_hold _ | Icc_sim.Trace.Gossip_publish _
      | Icc_sim.Trace.Gossip_request _ | Icc_sim.Trace.Gossip_acquire _
      | Icc_sim.Trace.Rbc_fragment _ | Icc_sim.Trace.Rbc_echo _
      | Icc_sim.Trace.Rbc_reconstruct _ | Icc_sim.Trace.Rbc_inconsistent _
      | Icc_sim.Trace.Round_entry _ | Icc_sim.Trace.Propose _
      | Icc_sim.Trace.Beacon_share _ | Icc_sim.Trace.Commit _
      | Icc_sim.Trace.Block_decided _ | Icc_sim.Trace.Protocol_error _
      | Icc_sim.Trace.Monitor_stall _ | Icc_sim.Trace.Monitor_clear _
      | Icc_sim.Trace.Fault_drop _ | Icc_sim.Trace.Fault_duplicate _
      | Icc_sim.Trace.Fault_reorder _ | Icc_sim.Trace.Fault_link_down _
      | Icc_sim.Trace.Fault_crash _ | Icc_sim.Trace.Fault_recover _
      | Icc_sim.Trace.Resync_summary _ | Icc_sim.Trace.Resync_request _
      | Icc_sim.Trace.Resync_reply _ | Icc_sim.Trace.Prof_span _
      | Icc_sim.Trace.Prof_counter _ ->
          false
    in
    List.iter
      (fun (v : Icc_sim.Monitor.violation) ->
        print_newline ();
        Printf.printf
          "violation window: %s in round %d (events of rounds %d..%d)\n"
          v.Icc_sim.Monitor.v_what v.v_round (max 1 (v.v_round - 1))
          (v.v_round + 1);
        let lo = max 1 (v.v_round - 1) and hi = v.v_round + 1 in
        Array.iteri
          (fun i (e : Icc_sim.Replay.entry) ->
            if is_relevant ~lo ~hi e then
              Printf.printf "  line %-7d %s\n" (i + 1)
                (Icc_sim.Trace.to_json ~time:e.Icc_sim.Replay.time
                   e.Icc_sim.Replay.event))
          entries)
      fatal
  end

(* Profiler snapshot carried on the bus ([prof-span]/[prof-counter] lines,
   present only when the run was profiled): per-phase wall-clock table,
   self-time share ranked descending, plus the crypto-op counters. *)
let print_profile r =
  let spans = ref [] and counters = ref [] in
  Array.iter
    (fun (e : Icc_sim.Replay.entry) ->
      match e.Icc_sim.Replay.event with
      | Icc_sim.Trace.Prof_span { name; count; total_us; self_us } ->
          spans := (name, count, total_us, self_us) :: !spans
      | Icc_sim.Trace.Prof_counter { name; value } ->
          counters := (name, value) :: !counters
      | Icc_sim.Trace.Run_start _ | Icc_sim.Trace.Run_end _
      | Icc_sim.Trace.Engine_dispatch _ | Icc_sim.Trace.Net_send _
      | Icc_sim.Trace.Net_deliver _ | Icc_sim.Trace.Net_hold _
      | Icc_sim.Trace.Gossip_publish _ | Icc_sim.Trace.Gossip_request _
      | Icc_sim.Trace.Gossip_acquire _ | Icc_sim.Trace.Rbc_fragment _
      | Icc_sim.Trace.Rbc_echo _ | Icc_sim.Trace.Rbc_reconstruct _
      | Icc_sim.Trace.Rbc_inconsistent _ | Icc_sim.Trace.Round_entry _
      | Icc_sim.Trace.Propose _ | Icc_sim.Trace.Notarize _
      | Icc_sim.Trace.Finalize _ | Icc_sim.Trace.Beacon_share _
      | Icc_sim.Trace.Commit _ | Icc_sim.Trace.Block_decided _
      | Icc_sim.Trace.Protocol_error _ | Icc_sim.Trace.Monitor_violation _
      | Icc_sim.Trace.Monitor_stall _ | Icc_sim.Trace.Monitor_clear _
      | Icc_sim.Trace.Fault_drop _ | Icc_sim.Trace.Fault_duplicate _
      | Icc_sim.Trace.Fault_reorder _ | Icc_sim.Trace.Fault_link_down _
      | Icc_sim.Trace.Fault_crash _ | Icc_sim.Trace.Fault_recover _
      | Icc_sim.Trace.Adv_corrupt _ | Icc_sim.Trace.Adv_equivocate _
      | Icc_sim.Trace.Adv_withhold _ | Icc_sim.Trace.Adv_censor _
      | Icc_sim.Trace.Adv_delay _ | Icc_sim.Trace.Adv_straggle _
      | Icc_sim.Trace.Resync_summary _ | Icc_sim.Trace.Resync_request _
      | Icc_sim.Trace.Resync_reply _ -> ())
    r.load.Icc_sim.Replay.entries;
  if !spans <> [] then begin
    let spans =
      List.sort
        (fun (n1, _, _, s1) (n2, _, _, s2) ->
          match Int.compare s2 s1 with 0 -> String.compare n1 n2 | c -> c)
        !spans
    in
    let total_self =
      List.fold_left (fun acc (_, _, _, s) -> acc + s) 0 spans
    in
    print_newline ();
    Printf.printf "profile (host wall-clock, self-time descending):
";
    Printf.printf "  %-28s %10s %12s %12s %6s
" "span" "count" "total-us"
      "self-us" "share";
    List.iter
      (fun (name, count, total_us, self_us) ->
        Printf.printf "  %-28s %10d %12d %12d %5.1f%%
" name count total_us
          self_us
          (if total_self = 0 then 0.
           else 100. *. float_of_int self_us /. float_of_int total_self))
      spans;
    let counters =
      List.sort (fun (n1, _) (n2, _) -> String.compare n1 n2) !counters
    in
    if counters <> [] then begin
      Printf.printf "  counters:
";
      List.iter
        (fun (name, value) -> Printf.printf "    %-28s %12d
" name value)
        counters
    end
  end

let print_critical_path r =
  match r.critical_round with
  | None -> ()
  | Some round ->
      print_newline ();
      Printf.printf "critical path, round %d (propose -> decided):\n" round;
      if r.critical_path = [] then
        print_endline "  (round not present in the trace)"
      else
        List.iter
          (fun (s : Icc_sim.Replay.path_step) ->
            Printf.printf "  %9.4f  +%.4f  %s\n" s.ps_time s.ps_delta
              s.ps_label)
          r.critical_path

let print r =
  print_header r;
  print_monitor r;
  print_waterfall r;
  print_bandwidth r;
  print_amplification r;
  print_faults r;
  print_violation_window r;
  print_profile r;
  print_critical_path r
