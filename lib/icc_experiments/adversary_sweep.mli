(** Experiment E11 — Byzantine strategy x protocol resilience sweep: every
    {!Icc_sim.Adversary} strategy against ICC0/ICC1/ICC2 and the PBFT /
    HotStuff / Tendermint baselines at f = 0..t corrupt parties plus the
    f = t+1 overshoot, asserting monitor-verified safety at f <= t and
    quantifying per-strategy liveness degradation. *)

type row = {
  strategy : string;
  protocol : string;
  f : int;
  blocks_per_s : float;
  vs_honest : float;
      (** Block rate over the same protocol's f = 0 rate. *)
  safety : bool;
      (** Monitor-verified for the ICC stack, prefix-consistency for the
          baselines. *)
}

val run : ?quick:bool -> unit -> row list
val print : row list -> unit
