(** The [icc analyze] report: re-run the invariant {!Icc_sim.Monitor}
    offline over a [--trace] JSONL dump and render the per-round pipeline
    waterfall, bandwidth matrices, dissemination amplification and the
    causal critical path of one round. *)

type report = {
  path : string;
  load : Icc_sim.Replay.load_result;
  monitor : Icc_sim.Monitor.t;
  bandwidth : Icc_sim.Replay.bandwidth;
  rounds : Icc_sim.Replay.round_row list;
  amplification : Icc_sim.Replay.amplification;
  critical_round : int option;
      (** The round the critical path walks: [?round] if given, else the
          last decided round in the trace. *)
  critical_path : Icc_sim.Replay.path_step list;
}

val analyze :
  ?config:Icc_sim.Monitor.config -> ?round:int -> string -> report
(** Load and aggregate a JSONL trace file.  Raises [Sys_error] if the
    file cannot be read; unparseable lines are collected, not fatal. *)

val ok : report -> bool
(** The offline monitor re-run found no fatal violation. *)

val print : report -> unit
