(* `bench perf` — before/after measurement for the hot-path optimisations.

   Runs each protocol variant (ICC0 direct, ICC1 gossip, ICC2 erasure RBC)
   twice on the identical scenario and seed: once with every optimisation
   toggled OFF (generic double-and-add field multiplication, no fixed-base
   tables, no block-digest memoisation, no pool caches) and once with the
   defaults ON.  Both runs dump their trace to an in-memory JSONL buffer;
   the buffers must be byte-identical — the optimisations may only change
   speed, never behaviour.

   Emits BENCH_perf.json (schema in EXPERIMENTS.md) and, with
   `--check ref.json`, fails if any scenario's optimised wall-clock
   regressed to more than 2x the checked-in reference (the gate covers the
   before/after scenarios only; the sweep rows are informational).

   A committee-size sweep rides along: optimised-only ICC0/ICC1 runs at
   n in {16, 50, 100}, reporting wall-clock, message totals and the
   per-message processing cost — the large-n scale-out's guard that
   per-message work stays flat while traffic grows O(n^2).

     dune exec bench/main.exe -- perf [--quick] [--n N] [--out PATH]
                                      [--check REF] *)

type scenario_result = {
  name : string;
  before_s : float;
  after_s : float;
  speedup : float;
  trace_identical : bool;
  trace_parallel_identical : bool;
      (* the optimised run re-done with batching + the Dpool parallel
         verify pool (small chunks, 4 workers) must also leave the trace
         byte-identical — deterministic join order *)
  trace_events : int;
  ops_before : (string * int) list;
  ops_after : (string * int) list;
  phases : (string * int) list;
      (* span name -> self-microseconds, from a separate profiled run (the
         profiler never runs during the timed before/after passes, so its
         overhead cannot pollute the regression gate) *)
}

(* --- argv ----------------------------------------------------------- *)

let find_arg flag =
  let n = Array.length Sys.argv in
  let rec go i =
    if i >= n - 1 then None
    else if String.equal Sys.argv.(i) flag then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 0

let has_flag flag = Array.exists (String.equal flag) Sys.argv

(* --- measurement ----------------------------------------------------- *)

(* Every toggle the tentpole introduced, flipped together.  Beacon-share
   verification at admission is a correctness fix, not an optimisation, so
   it has no toggle and runs in both configurations. *)
let set_optimizations on =
  Icc_crypto.Fp.set_fast_mul on;
  Icc_crypto.Group.set_fixed_base on;
  Icc_crypto.Batch.set_batch_verify on;
  Icc_core.Block.set_memoization on;
  Icc_core.Pool.set_caching on

let perf_scenario ~quick ~seed ~n =
  {
    (Icc_core.Runner.default_scenario ~n ~seed) with
    Icc_core.Runner.duration = 1e6;
    max_rounds = Some (if quick then 4 else 10);
    delay = Icc_core.Runner.Fixed_delay 0.02;
    epsilon = 0.05;
  }

let count_lines s =
  String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 s

let traced_run run_fn scenario =
  let tr = Icc_sim.Trace.create () in
  let buf = Buffer.create (1 lsl 20) in
  Icc_sim.Trace.subscribe tr (fun ~time ev ->
      Buffer.add_string buf (Icc_sim.Trace.to_json ~time ev);
      Buffer.add_char buf '\n');
  Icc_crypto.Counters.reset ();
  let t0 = Unix.gettimeofday () in
  let _ = run_fn { scenario with Icc_core.Runner.trace = Some tr } in
  let dt = Unix.gettimeofday () -. t0 in
  (dt, Buffer.contents buf, Icc_crypto.Counters.snapshot ())

(* Per-phase attribution from one extra optimised run with the
   self-profiler on.  Kept apart from [traced_run] so the timed passes pay
   zero profiling overhead. *)
let profiled_phases run_fn scenario =
  Icc_obs.Profile.reset ();
  Icc_obs.Profile.set_enabled true;
  let _ = run_fn scenario in
  Icc_obs.Profile.set_enabled false;
  List.map
    (fun st ->
      ( st.Icc_obs.Profile.sp_name,
        int_of_float ((st.Icc_obs.Profile.sp_self_s *. 1e6) +. 0.5) ))
    (Icc_obs.Profile.stats ())

let measure ~quick ~seed ~n name run_fn =
  let scenario = perf_scenario ~quick ~seed ~n in
  set_optimizations false;
  let before_s, trace_before, ops_before = traced_run run_fn scenario in
  set_optimizations true;
  let after_s, trace_after, ops_after = traced_run run_fn scenario in
  (* Parallel-pool leg: the optimised configuration plus the Domain
     verify pool, with chunks small enough that n=16 certificate and
     beacon batches actually fan out.  Untimed as far as the gate is
     concerned; what it must prove is byte-identity (deterministic join
     order).  On 4.14 Dpool degrades to sequential and this is a plain
     re-run. *)
  Icc_crypto.Batch.set_parallel_verify true;
  Icc_obs.Dpool.set_workers 4;
  Icc_crypto.Batch.set_max_chunk 4;
  let _, trace_parallel, _ = traced_run run_fn scenario in
  Icc_crypto.Batch.set_parallel_verify false;
  Icc_crypto.Batch.set_max_chunk 64;
  (* Join the workers before anything else is timed: idle domains tax
     every later allocation-heavy run through the stop-the-world minor
     GC barrier (a parked pool cost ICC2's optimised leg ~3x). *)
  Icc_obs.Dpool.shutdown ();
  let phases = profiled_phases run_fn scenario in
  {
    name;
    before_s;
    after_s;
    speedup = (if after_s > 0. then before_s /. after_s else nan);
    trace_identical = String.equal trace_before trace_after;
    trace_parallel_identical = String.equal trace_after trace_parallel;
    trace_events = count_lines trace_after;
    ops_before;
    ops_after;
    phases;
  }

(* --- committee-size sweep --------------------------------------------- *)

type sweep_result = {
  sw_name : string;
  sw_n : int;
  sw_wall_s : float;
  sw_msgs : int;
  sw_rounds : int;
  sw_us_per_msg : float;
}

(* Optimised-only runs across committee sizes.  The interesting number is
   the last column: wall-clock divided by messages delivered.  Message
   count grows O(n^2) by protocol design; the per-message cost must not —
   a superlinear slot-ring/engine/metrics structure shows up here as
   us/msg climbing with n. *)
let sweep_row ~quick ~seed name run_fn n =
  let scenario = perf_scenario ~quick ~seed ~n in
  let t0 = Unix.gettimeofday () in
  let res = run_fn scenario in
  let wall = Unix.gettimeofday () -. t0 in
  let msgs = Icc_sim.Metrics.total_msgs res.Icc_core.Runner.metrics in
  {
    sw_name = name;
    sw_n = n;
    sw_wall_s = wall;
    sw_msgs = msgs;
    sw_rounds = res.Icc_core.Runner.rounds_decided;
    sw_us_per_msg = (if msgs > 0 then wall *. 1e6 /. float_of_int msgs else nan);
  }

let run_sweep ~quick ~seed =
  let ns = if quick then [ 16; 32 ] else [ 16; 50; 100 ] in
  set_optimizations true;
  List.concat_map
    (fun n ->
      [
        sweep_row ~quick ~seed "ICC0" Icc_core.Runner.run n;
        sweep_row ~quick ~seed "ICC1" (fun s -> Icc_gossip.Icc1.run s) n;
      ])
    ns

(* --- batch-size sweep -------------------------------------------------- *)

type batch_row = {
  br_scheme : string; (* "schnorr" | "dleq" *)
  br_batch : int; (* 0 = batching off (per-item verify) *)
  br_us_per_op : float;
  br_ops : int;
}

(* Synthetic verification corpus: how does per-signature cost move with
   the RLC chunk size?  Informational rows (the 2x gate covers only the
   protocol scenarios); batch = 0 is the per-item baseline.  Keys repeat
   across items (64 distinct signers / verification keys) so the
   fixed-base cache behaves as in a real committee; every DLEQ item
   shares one (generator, message-point) base pair, the beacon-round
   shape. *)
let batch_sweep_rows ~quick =
  let total = if quick then 256 else 2048 in
  let rand_bits =
    let c = ref 0 in
    fun () ->
      incr c;
      Icc_crypto.Sha256.to_int61
        (Icc_crypto.Sha256.digest_string (Printf.sprintf "bench-batch|%d" !c))
  in
  let nkeys = 64 in
  let keys = Array.init nkeys (fun _ -> Icc_crypto.Schnorr.keygen rand_bits) in
  let schnorr_items =
    List.init total (fun i ->
        let sk, pk = keys.(i mod nkeys) in
        let msg = Printf.sprintf "batch-sweep message %d" i in
        (pk, msg, Icc_crypto.Schnorr.sign sk msg))
  in
  let base2 =
    Icc_crypto.Group.hash_to_group
      (Icc_crypto.Sha256.digest_string "batch-sweep round point")
  in
  let dleq_items =
    List.init total (fun i ->
        let x = Icc_crypto.Group.random_scalar_nonzero rand_bits in
        let a = Icc_crypto.Group.base_pow x
        and b = Icc_crypto.Group.pow_cached base2 x in
        ( a,
          b,
          Icc_crypto.Dleq.prove ~base1:Icc_crypto.Group.generator ~base2
            ~exponent:x ~msg_tag:(string_of_int i) ))
  in
  let time_leg scheme batch verify_all =
    Icc_crypto.Batch.set_batch_verify (batch > 0);
    if batch > 0 then Icc_crypto.Batch.set_max_chunk batch;
    (* Min of a few passes: one pass over the corpus is tens of
       milliseconds, where scheduler/GC noise would swamp the per-op
       differences the sweep exists to show. *)
    let reps = 5 in
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let verdicts = verify_all () in
      let wall = Unix.gettimeofday () -. t0 in
      if not (List.for_all Fun.id verdicts) then
        failwith ("bench perf: batch sweep rejected a genuine " ^ scheme);
      if wall < !best then best := wall
    done;
    {
      br_scheme = scheme;
      br_batch = batch;
      br_us_per_op = !best *. 1e6 /. float_of_int total;
      br_ops = total;
    }
  in
  let sizes = [ 0; 4; 8; 16; 32; 64; 128; 256 ] in
  let rows =
    List.map
      (fun b ->
        time_leg "schnorr" b (fun () ->
            Icc_crypto.Schnorr.verify_batch schnorr_items))
      sizes
    @ List.map
        (fun b ->
          time_leg "dleq" b (fun () ->
              Icc_crypto.Dleq.verify_batch
                ~base1:Icc_crypto.Group.generator ~base2 dleq_items))
        sizes
  in
  Icc_crypto.Batch.set_batch_verify true;
  Icc_crypto.Batch.set_max_chunk 64;
  rows

(* --- JSON emission ---------------------------------------------------- *)

let ops_json ops =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%S:%d" k v) ops)
  ^ "}"

let scenario_json r =
  Printf.sprintf
    {|    {"name":%S,"before_s":%.6f,"after_s":%.6f,"speedup":%.2f,"trace_identical":%b,"trace_parallel_identical":%b,"trace_events":%d,"ops_before":%s,"ops_after":%s,"phases_us":%s}|}
    r.name r.before_s r.after_s r.speedup r.trace_identical
    r.trace_parallel_identical r.trace_events (ops_json r.ops_before)
    (ops_json r.ops_after) (ops_json r.phases)

let sweep_json s =
  Printf.sprintf
    {|    {"name":%S,"n":%d,"wall_s":%.6f,"messages":%d,"rounds":%d,"us_per_msg":%.3f}|}
    s.sw_name s.sw_n s.sw_wall_s s.sw_msgs s.sw_rounds s.sw_us_per_msg

let batch_json b =
  Printf.sprintf
    {|    {"scheme":%S,"batch":%d,"us_per_op":%.3f,"ops":%d}|}
    b.br_scheme b.br_batch b.br_us_per_op b.br_ops

let results_json ~quick ~seed ~rounds ~n results sweep batch_sweep =
  let tb = List.fold_left (fun a r -> a +. r.before_s) 0. results in
  let ta = List.fold_left (fun a r -> a +. r.after_s) 0. results in
  Printf.sprintf
    {|{
  "config": {"n":%d,"seed":%d,"max_rounds":%d,"delay_s":0.02,"quick":%b},
  "scenarios": [
%s
  ],
  "sweep": [
%s
  ],
  "batch_sweep": [
%s
  ],
  "total": {"before_s":%.6f,"after_s":%.6f,"speedup":%.2f}
}
|}
    n seed rounds quick
    (String.concat ",\n" (List.map scenario_json results))
    (String.concat ",\n" (List.map sweep_json sweep))
    (String.concat ",\n" (List.map batch_json batch_sweep))
    tb ta
    (if ta > 0. then tb /. ta else nan)

(* --- regression check against a committed reference ------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let substr_index s pat from =
  let n = String.length s and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.equal (String.sub s i m) pat then Some i
    else go (i + 1)
  in
  go from

(* Pull `"after_s":<float>` out of the scenario object named [name] in a
   BENCH_perf.json document — a keyed scan, no JSON parser needed for our
   own fixed schema. *)
let ref_after_s json name =
  Option.bind (substr_index json (Printf.sprintf "\"name\":%S" name) 0)
    (fun p ->
      Option.bind (substr_index json "\"after_s\":" p) (fun q ->
          let start = q + String.length "\"after_s\":" in
          let n = String.length json in
          let e = ref start in
          while
            !e < n
            &&
            match json.[!e] with
            | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
            | _ -> false
          do
            incr e
          done;
          float_of_string_opt (String.sub json start (!e - start))))

let check_against ref_path results =
  let json = read_file ref_path in
  let failures =
    List.filter_map
      (fun r ->
        match ref_after_s json r.name with
        | None ->
            Some (Printf.sprintf "%s: not found in reference %s" r.name ref_path)
        | Some ref_after ->
            if r.after_s > 2.0 *. ref_after then
              Some
                (Printf.sprintf
                   "%s: optimised wall-clock %.3fs is > 2x reference %.3fs"
                   r.name r.after_s ref_after)
            else None)
      results
  in
  List.iter prerr_endline failures;
  failures = []

(* --- entry point ------------------------------------------------------ *)

let print_table results =
  Printf.printf "%-6s %12s %12s %9s %9s %8s\n" "proto" "before (s)"
    "after (s)" "speedup" "trace=" "events";
  List.iter
    (fun r ->
      Printf.printf "%-6s %12.3f %12.3f %8.1fx %9s %8d\n" r.name r.before_s
        r.after_s r.speedup
        (if r.trace_identical && r.trace_parallel_identical then "yes"
         else "NO")
        r.trace_events)
    results;
  let interesting =
    [
      "pow_generic";
      "pow_fixed_base";
      "multi_exps";
      "schnorr_batched";
      "dleq_batched";
      "batch_fallbacks";
    ]
  in
  List.iter
    (fun r ->
      Printf.printf "  %s ops: %s\n" r.name
        (String.concat "  "
           (List.filter_map
              (fun k ->
                match
                  (List.assoc_opt k r.ops_before, List.assoc_opt k r.ops_after)
                with
                | Some b, Some a -> Some (Printf.sprintf "%s %d->%d" k b a)
                | _ -> None)
              interesting)))
    results;
  (* Per-phase attribution (share of profiled self-time, top phases). *)
  List.iter
    (fun r ->
      let total = List.fold_left (fun a (_, us) -> a + us) 0 r.phases in
      if total > 0 then begin
        let top =
          List.sort
            (fun (n1, a) (n2, b) ->
              match Int.compare b a with
              | 0 -> String.compare n1 n2
              | c -> c)
            r.phases
          |> List.filteri (fun i _ -> i < 4)
        in
        Printf.printf "  %s phases: %s
" r.name
          (String.concat "  "
             (List.map
                (fun (name, us) ->
                  Printf.sprintf "%s %.1f%%" name
                    (100. *. float_of_int us /. float_of_int total))
                top))
      end)
    results

let print_sweep sweep =
  Printf.printf "%-6s %5s %10s %10s %7s %10s\n" "proto" "n" "wall (s)"
    "messages" "rounds" "us/msg";
  List.iter
    (fun s ->
      Printf.printf "%-6s %5d %10.3f %10d %7d %10.3f\n" s.sw_name s.sw_n
        s.sw_wall_s s.sw_msgs s.sw_rounds s.sw_us_per_msg)
    sweep

let main () =
  let quick = has_flag "--quick" in
  let out = Option.value ~default:"BENCH_perf.json" (find_arg "--out") in
  let n =
    match Option.map int_of_string_opt (find_arg "--n") with
    | Some (Some n) when n >= 4 -> n
    | Some _ -> invalid_arg "bench perf: --n expects an integer >= 4"
    | None -> 16
  in
  let seed = 7 in
  let rounds = if quick then 4 else 10 in
  Printf.printf
    "== bench perf: hot-path before/after (n=%d, seed %d, %d rounds%s) ==\n" n
    seed rounds
    (if quick then ", quick" else "");
  let results =
    List.map
      (fun (name, run_fn) -> measure ~quick ~seed ~n name run_fn)
      [
        ("ICC0", Icc_core.Runner.run);
        ("ICC1", fun s -> Icc_gossip.Icc1.run s);
        ("ICC2", fun s -> Icc_rbc.Icc2.run s);
      ]
  in
  set_optimizations true;
  print_table results;
  Printf.printf "== committee-size sweep (optimised, seed %d) ==\n" seed;
  let sweep = run_sweep ~quick ~seed in
  print_sweep sweep;
  Printf.printf "== batch-size sweep (synthetic, us/op; batch 0 = off) ==\n";
  let batch_sweep = batch_sweep_rows ~quick in
  Printf.printf "%-8s %7s %10s %7s\n" "scheme" "batch" "us/op" "ops";
  List.iter
    (fun b ->
      Printf.printf "%-8s %7d %10.3f %7d\n" b.br_scheme b.br_batch
        b.br_us_per_op b.br_ops)
    batch_sweep;
  let json = results_json ~quick ~seed ~rounds ~n results sweep batch_sweep in
  let oc =
    try open_out out
    with Sys_error msg ->
      Printf.eprintf
        "bench perf: cannot write --out %s (%s); does the directory exist?\n"
        out msg;
      exit 1
  in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" out;
  let traces_ok =
    List.for_all
      (fun r -> r.trace_identical && r.trace_parallel_identical)
      results
  in
  if not traces_ok then
    prerr_endline "FAIL: optimisations changed the trace (not byte-identical)";
  let check_ok =
    match find_arg "--check" with
    | None -> true
    | Some ref_path -> check_against ref_path results
  in
  if not (traces_ok && check_ok) then exit 1
