(* The benchmark harness.

   Part 1 — Bechamel micro-benchmarks, one Test.make per substrate
   operation (crypto, erasure coding, one full simulated round).

   Part 2 — exhibit regeneration: every table and figure-class claim of the
   paper's evaluation, E1 (Table 1) through E8, printed in the same
   rows/series the paper reports.  See DESIGN.md section 2 for the index and
   EXPERIMENTS.md for paper-vs-measured.

     dune exec bench/main.exe            full run (~minutes)
     dune exec bench/main.exe -- --quick reduced sweeps
     dune exec bench/main.exe -- perf    hot-path before/after (see Perf) *)

open Bechamel
open Toolkit

let quick = Array.exists (String.equal "--quick") Sys.argv

(* ----------------------------------------------------------------- *)
(* Part 1: micro-benchmarks                                           *)
(* ----------------------------------------------------------------- *)

let rng = Icc_sim.Rng.create 0xbe7c
let rand_bits () = Icc_sim.Rng.bits61 rng

let kilobyte = String.init 1024 (fun i -> Char.chr (i land 0xff))

let bench_sha256 =
  Test.make ~name:"sha256-1KiB" (Staged.stage (fun () ->
      ignore (Icc_crypto.Sha256.digest_string kilobyte)))

let schnorr_sk, schnorr_pk = Icc_crypto.Schnorr.keygen rand_bits
let schnorr_sig = Icc_crypto.Schnorr.sign schnorr_sk "bench message"

let bench_schnorr_sign =
  Test.make ~name:"schnorr-sign" (Staged.stage (fun () ->
      ignore (Icc_crypto.Schnorr.sign schnorr_sk "bench message")))

let bench_schnorr_verify =
  Test.make ~name:"schnorr-verify" (Staged.stage (fun () ->
      ignore (Icc_crypto.Schnorr.verify schnorr_pk "bench message" schnorr_sig)))

let vuf_params, vuf_secrets = Icc_crypto.Threshold_vuf.setup ~threshold_t:4 ~n:13 rand_bits
let vuf_msg = "beacon round 7"
let vuf_shares =
  List.map (fun sk -> Icc_crypto.Threshold_vuf.sign_share vuf_params sk vuf_msg)
    vuf_secrets

let bench_vuf_share =
  Test.make ~name:"beacon-share-sign" (Staged.stage (fun () ->
      ignore
        (Icc_crypto.Threshold_vuf.sign_share vuf_params (List.hd vuf_secrets)
           vuf_msg)))

let bench_vuf_verify_share =
  Test.make ~name:"beacon-share-verify" (Staged.stage (fun () ->
      ignore
        (Icc_crypto.Threshold_vuf.verify_share vuf_params vuf_msg
           (List.hd vuf_shares))))

let bench_vuf_combine =
  Test.make ~name:"beacon-combine-t5" (Staged.stage (fun () ->
      ignore (Icc_crypto.Threshold_vuf.combine vuf_params vuf_msg vuf_shares)))

let ms_params, ms_secrets = Icc_crypto.Multisig.setup ~threshold_h:9 ~n:13 rand_bits
let ms_msg = "notarization|7|3|deadbeef"
let ms_shares =
  List.map (fun sk -> Icc_crypto.Multisig.sign_share ms_params sk ms_msg) ms_secrets

let bench_multisig_combine =
  Test.make ~name:"multisig-combine-9of13" (Staged.stage (fun () ->
      ignore (Icc_crypto.Multisig.combine ms_params ms_msg ms_shares)))

let rs_data = String.init 65536 (fun i -> Char.chr (i land 0xff))
let rs_coded = Icc_erasure.Reed_solomon.encode ~k:5 ~n:13 rs_data
let rs_fragments =
  List.filteri (fun i _ -> i mod 2 = 0)
    (Array.to_list
       (Array.mapi (fun i f -> (i, f)) rs_coded.Icc_erasure.Reed_solomon.fragments))

let bench_rs_encode =
  Test.make ~name:"reed-solomon-encode-64KiB" (Staged.stage (fun () ->
      ignore (Icc_erasure.Reed_solomon.encode ~k:5 ~n:13 rs_data)))

let bench_rs_decode =
  Test.make ~name:"reed-solomon-decode-64KiB" (Staged.stage (fun () ->
      ignore
        (Icc_erasure.Reed_solomon.decode ~k:5 ~n:13 ~data_size:65536 rs_fragments)))

let merkle_leaves = List.init 13 (fun i -> Printf.sprintf "leaf-%d" i)
let merkle_root = Icc_crypto.Merkle.root_of_leaves merkle_leaves
let merkle_proof = Icc_crypto.Merkle.prove merkle_leaves 7

let bench_merkle_prove =
  Test.make ~name:"merkle-prove-13" (Staged.stage (fun () ->
      ignore (Icc_crypto.Merkle.prove merkle_leaves 7)))

let bench_merkle_verify =
  Test.make ~name:"merkle-verify-13" (Staged.stage (fun () ->
      ignore (Icc_crypto.Merkle.verify ~root:merkle_root ~leaf:"leaf-7" merkle_proof)))

let bench_icc0_rounds =
  (* one full simulated five-round ICC0 consensus among 4 parties,
     including key generation — the end-to-end cost of the protocol *)
  Test.make ~name:"icc0-5-rounds-n4" (Staged.stage (fun () ->
      ignore
        (Icc_core.Runner.run
           {
             (Icc_core.Runner.default_scenario ~n:4 ~seed:1) with
             Icc_core.Runner.duration = 1e6;
             max_rounds = Some 5;
             delay = Icc_core.Runner.Fixed_delay 0.02;
             epsilon = 0.05;
           })))

let micro_tests =
  Test.make_grouped ~name:"icc" ~fmt:"%s/%s"
    [
      bench_sha256;
      bench_schnorr_sign;
      bench_schnorr_verify;
      bench_vuf_share;
      bench_vuf_verify_share;
      bench_vuf_combine;
      bench_multisig_combine;
      bench_rs_encode;
      bench_rs_decode;
      bench_merkle_prove;
      bench_merkle_verify;
      bench_icc0_rounds;
    ]

let run_micro () =
  print_endline "== micro-benchmarks (bechamel, monotonic clock) ==";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg
      ~limit:(if quick then 200 else 1000)
      ~quota:(Time.second (if quick then 0.2 else 0.5))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg instances micro_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-34s %16s\n" "operation" "time per run";
  List.iter
    (fun (name, ns) ->
      let human =
        if ns > 1e9 then Printf.sprintf "%8.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "%-34s %16s\n" name human)
    rows;
  print_newline ()

(* ----------------------------------------------------------------- *)
(* Part 1b: per-round timeline, derived from the trace consumer       *)
(* ----------------------------------------------------------------- *)

(* For each protocol variant on one fixed scenario: the per-round pipeline
   deltas (first round entry -> first proposal -> first notarization ->
   first finalization) and the per-kind traffic breakdown.  Every number
   comes out of the Metrics trace subscriber. *)
let timeline_scenario ~seed =
  {
    (Icc_core.Runner.default_scenario ~n:7 ~seed) with
    Icc_core.Runner.duration = 10.;
    delay = Icc_core.Runner.Fixed_delay 0.05;
    (* invariants watched while the timelines run *)
    monitor = Some (Icc_sim.Monitor.default_config ~delta:1.0 ());
  }

let print_timeline label (metrics : Icc_sim.Metrics.t) =
  Printf.printf "-- %s: per-round pipeline (first events, seconds) --\n" label;
  Printf.printf "%5s %9s %10s %10s %10s %9s\n" "round" "entry" "+propose"
    "+notarize" "+finalize" "total";
  let dash w = String.make (w - 1) ' ' ^ "-" in
  let abs = function
    | Some a -> Printf.sprintf "%9.3f" a
    | None -> dash 9
  in
  let delta w a b =
    match (a, b) with
    | Some a, Some b -> Printf.sprintf "%*.3f" w (b -. a)
    | _ -> dash w
  in
  let rounds = Icc_sim.Metrics.max_round metrics in
  let shown = min rounds 8 in
  for round = 1 to shown do
    let entry = Icc_sim.Metrics.round_entry_time metrics round in
    let prop = Icc_sim.Metrics.proposal_time metrics round in
    let notz = Icc_sim.Metrics.notarization_time metrics round in
    let fin = Icc_sim.Metrics.finalization_time metrics round in
    Printf.printf "%5d %s %s %s %s %s\n" round (abs entry)
      (delta 10 entry prop) (delta 10 prop notz) (delta 10 notz fin)
      (delta 9 entry fin)
  done;
  if rounds > shown then Printf.printf "  ... (%d rounds total)\n" rounds;
  print_endline "   traffic by kind:";
  List.iter
    (fun (kind, msgs, bytes) ->
      Printf.printf "     %-18s %7d msgs %10d bytes\n" kind msgs bytes)
    (Icc_sim.Metrics.kinds metrics);
  print_newline ()

let monitor_verdict label (r : Icc_core.Runner.result) =
  match r.Icc_core.Runner.monitor with
  | None -> ()
  | Some m -> Printf.printf "   %s %s\n" label (Icc_sim.Monitor.summary m)

let run_timelines () =
  print_endline
    "== per-round timelines (ICC0 / ICC1 / ICC2, n=7, delta=50ms) ==";
  let r0 = Icc_core.Runner.run (timeline_scenario ~seed:42) in
  print_timeline "ICC0 (direct)" r0.Icc_core.Runner.metrics;
  monitor_verdict "ICC0" r0;
  let r1 = Icc_gossip.Icc1.run (timeline_scenario ~seed:42) in
  print_timeline "ICC1 (gossip)" r1.Icc_core.Runner.metrics;
  monitor_verdict "ICC1" r1;
  let r2 = Icc_rbc.Icc2.run (timeline_scenario ~seed:42) in
  print_timeline "ICC2 (erasure RBC)" r2.Icc_core.Runner.metrics;
  monitor_verdict "ICC2" r2

(* ----------------------------------------------------------------- *)
(* Part 2: exhibit regeneration                                       *)
(* ----------------------------------------------------------------- *)

let exhibit name f =
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "  [%s regenerated in %.1f s]\n\n" name (Unix.gettimeofday () -. t0)

let () =
  if Array.exists (String.equal "perf") Sys.argv then begin
    Perf.main ();
    exit 0
  end

let () =
  Printf.printf "ICC reproduction benchmark harness%s\n\n"
    (if quick then " (quick mode)" else "");
  run_micro ();
  run_timelines ();
  exhibit "E1" (fun () ->
      Icc_experiments.Table1.print (Icc_experiments.Table1.run ~quick ()));
  exhibit "E2" (fun () ->
      Icc_experiments.Msg_complexity.print
        (Icc_experiments.Msg_complexity.run ~quick ()));
  exhibit "E3" (fun () ->
      Icc_experiments.Round_complexity.print
        (Icc_experiments.Round_complexity.run ~quick ()));
  exhibit "E4" (fun () ->
      Icc_experiments.Throughput_latency.print
        (Icc_experiments.Throughput_latency.run ~quick ()));
  exhibit "E5" (fun () ->
      Icc_experiments.Leader_bottleneck.print
        (Icc_experiments.Leader_bottleneck.run ~quick ()));
  exhibit "E6" (fun () ->
      Icc_experiments.Baselines_compare.print
        (Icc_experiments.Baselines_compare.run ~quick ()));
  exhibit "E7" (fun () ->
      Icc_experiments.Robustness.print (Icc_experiments.Robustness.run ~quick ()));
  exhibit "E8" (fun () ->
      Icc_experiments.Asynchrony.print (Icc_experiments.Asynchrony.run ~quick ()));
  exhibit "E9" (fun () ->
      Icc_experiments.Adaptivity.print (Icc_experiments.Adaptivity.run ~quick ()))
