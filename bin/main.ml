(* icc — command-line front end for the ICC reproduction.

   Subcommands:
     run         one ICC0/ICC1/ICC2 simulation with explicit parameters
     table1      regenerate the paper's Table 1 (experiment E1)
     exp         regenerate any single experiment E1..E8
     baselines   run PBFT / chained HotStuff on a matching network
     keys        demonstrate key generation and the random beacon *)

open Cmdliner

let protocol_conv =
  Arg.enum [ ("icc0", `Icc0); ("icc1", `Icc1); ("icc2", `Icc2) ]

let behavior_conv =
  Arg.enum
    [
      ("crashed", Icc_core.Party.crashed);
      ("equivocator", Icc_core.Party.byzantine_equivocator);
      ("stealthy", Icc_core.Party.stealthy_equivocator);
      ("lazy", Icc_core.Party.lazy_participant);
    ]

(* --trace FILE: subscribe a JSONL sink to a fresh trace bus and hand the
   bus to the scenario; one JSON object per line, schema in DESIGN.md. *)
let with_trace_file path f =
  match path with
  | None -> f None
  | Some path ->
      let oc =
        try open_out path
        with Sys_error msg ->
          Printf.eprintf "icc: cannot open trace file: %s\n" msg;
          exit 1
      in
      let trace = Icc_sim.Trace.create () in
      Icc_sim.Trace.subscribe trace (fun ~time ev ->
          output_string oc (Icc_sim.Trace.to_json ~time ev);
          output_char oc '\n');
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f (Some trace))

let trace_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a JSONL event log of the run to $(docv).")

(* ------------------------------------------------------------------ run *)

let run_cmd =
  let protocol =
    Arg.(value & opt protocol_conv `Icc0 & info [ "protocol"; "p" ]
           ~docv:"PROTO" ~doc:"Protocol variant: icc0, icc1 or icc2.")
  in
  let n = Arg.(value & opt int 7 & info [ "n" ] ~doc:"Number of parties.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let duration =
    Arg.(value & opt float 30. & info [ "duration"; "d" ]
           ~doc:"Simulated seconds.")
  in
  let delta =
    Arg.(value & opt float 0.05 & info [ "delta" ]
           ~doc:"One-way network delay in seconds (fixed model).")
  in
  let wan =
    Arg.(value & flag & info [ "wan" ]
           ~doc:"Use the paper's WAN model (RTT ~ U[6,110] ms) instead of a \
                 fixed delay.")
  in
  let epsilon =
    Arg.(value & opt float 0.2 & info [ "epsilon" ]
           ~doc:"Governor epsilon of the Delta_ntry delay function.")
  in
  let delta_bnd =
    Arg.(value & opt float 1.0 & info [ "delta-bnd" ]
           ~doc:"Partial-synchrony bound Delta_bnd.")
  in
  let load =
    Arg.(value & opt (some float) None & info [ "load" ]
           ~doc:"Client commands per second (1 KB each).")
  in
  let block_size =
    Arg.(value & opt (some int) None & info [ "block-size" ]
           ~doc:"Fixed block payload in bytes (overrides --load).")
  in
  let corrupt =
    Arg.(value & opt_all (pair ~sep:':' int behavior_conv) []
         & info [ "corrupt" ] ~docv:"ID:BEHAVIOR"
             ~doc:"Corrupt party, e.g. 2:crashed, 3:equivocator, 4:stealthy, \
                   5:lazy.  Repeatable.")
  in
  let async_until =
    Arg.(value & opt float 0. & info [ "async-until" ]
           ~doc:"Adversarial asynchrony until this simulated time.")
  in
  let fanout =
    Arg.(value & opt int 4 & info [ "fanout" ] ~doc:"Gossip fanout (icc1).")
  in
  let exec protocol n seed duration delta wan epsilon delta_bnd load block_size
      corrupt async_until fanout trace_file =
    let r =
      with_trace_file trace_file (fun trace ->
          let scenario =
            {
              (Icc_core.Runner.default_scenario ~n ~seed) with
              Icc_core.Runner.duration;
              delay =
                (if wan then
                   Icc_core.Runner.Wan { rtt_lo = 0.006; rtt_hi = 0.110 }
                 else Icc_core.Runner.Fixed_delay delta);
              epsilon;
              delta_bnd;
              behaviors = corrupt;
              async_until;
              workload =
                (match (block_size, load) with
                | Some size, _ -> Icc_core.Runner.Fixed_block_size size
                | None, Some rate ->
                    Icc_core.Runner.Load { rate_per_s = rate; cmd_size = 1024 }
                | None, None -> Icc_core.Runner.No_load);
              trace;
            }
          in
          match protocol with
          | `Icc0 -> Icc_core.Runner.run scenario
          | `Icc1 -> Icc_gossip.Icc1.run ~fanout scenario
          | `Icc2 -> Icc_rbc.Icc2.run scenario)
    in
    Option.iter (Printf.printf "trace written       %s\n") trace_file;
    Printf.printf "rounds decided      %d\n" r.Icc_core.Runner.rounds_decided;
    Printf.printf "directly finalized  %d\n"
      (List.length r.Icc_core.Runner.directly_finalized);
    Printf.printf "block rate          %.3f blocks/s\n"
      r.Icc_core.Runner.blocks_per_s;
    Printf.printf "commit latency      %.4f s\n" r.Icc_core.Runner.mean_latency;
    Printf.printf "commands committed  %d\n"
      r.Icc_core.Runner.commands_committed;
    Printf.printf "safety (P2+prefix)  %b\n" r.Icc_core.Runner.safety_ok;
    Printf.printf "deadlock-free (P1)  %b\n" r.Icc_core.Runner.p1_ok;
    Printf.printf "total traffic       %.2f MB in %d msgs (max/party %.2f MB)\n"
      (float_of_int (Icc_sim.Metrics.total_bytes r.Icc_core.Runner.metrics)
      /. 1e6)
      (Icc_sim.Metrics.total_msgs r.Icc_core.Runner.metrics)
      (float_of_int
         (Icc_sim.Metrics.max_bytes_per_party r.Icc_core.Runner.metrics)
      /. 1e6);
    if not (r.Icc_core.Runner.safety_ok && r.Icc_core.Runner.p1_ok) then
      exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one ICC simulation.")
    Term.(
      const exec $ protocol $ n $ seed $ duration $ delta $ wan $ epsilon
      $ delta_bnd $ load $ block_size $ corrupt $ async_until $ fanout
      $ trace_arg)

(* ------------------------------------------------------------ exhibits *)

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps / shorter runs.")

let table1_cmd =
  let exec quick =
    Icc_experiments.Table1.print (Icc_experiments.Table1.run ~quick ())
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Regenerate the paper's Table 1 (experiment E1).")
    Term.(const exec $ quick_arg)

let exp_cmd =
  let which =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ID" ~doc:"Experiment id: e1..e9.")
  in
  let exec quick which =
    match String.lowercase_ascii which with
    | "e1" -> Icc_experiments.Table1.print (Icc_experiments.Table1.run ~quick ())
    | "e2" ->
        Icc_experiments.Msg_complexity.print
          (Icc_experiments.Msg_complexity.run ~quick ())
    | "e3" ->
        Icc_experiments.Round_complexity.print
          (Icc_experiments.Round_complexity.run ~quick ())
    | "e4" ->
        Icc_experiments.Throughput_latency.print
          (Icc_experiments.Throughput_latency.run ~quick ())
    | "e5" ->
        Icc_experiments.Leader_bottleneck.print
          (Icc_experiments.Leader_bottleneck.run ~quick ())
    | "e6" ->
        Icc_experiments.Baselines_compare.print
          (Icc_experiments.Baselines_compare.run ~quick ())
    | "e7" ->
        Icc_experiments.Robustness.print (Icc_experiments.Robustness.run ~quick ())
    | "e8" ->
        Icc_experiments.Asynchrony.print (Icc_experiments.Asynchrony.run ~quick ())
    | "e9" ->
        Icc_experiments.Adaptivity.print (Icc_experiments.Adaptivity.run ~quick ())
    | other -> Printf.eprintf "unknown experiment %s (expected e1..e9)\n" other
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Regenerate one experiment (e1..e8).")
    Term.(const exec $ quick_arg $ which)

(* ----------------------------------------------------------- baselines *)

let baselines_cmd =
  let proto =
    Arg.(value & opt (enum [ ("pbft", `Pbft); ("hotstuff", `Hotstuff); ("tendermint", `Tendermint) ]) `Pbft
         & info [ "protocol"; "p" ] ~doc:"pbft, hotstuff or tendermint.")
  in
  let n = Arg.(value & opt int 7 & info [ "n" ] ~doc:"Replicas.") in
  let duration =
    Arg.(value & opt float 30. & info [ "duration"; "d" ] ~doc:"Seconds.")
  in
  let delta =
    Arg.(value & opt float 0.05 & info [ "delta" ] ~doc:"One-way delay.")
  in
  let crashed =
    Arg.(value & opt_all int [] & info [ "crash" ] ~doc:"Crashed replica id.")
  in
  let exec proto n duration delta crashed trace_file =
    let r =
      with_trace_file trace_file (fun trace ->
          let scenario =
            {
              (Icc_baselines.Harness.default_scenario ~n ~seed:42) with
              Icc_baselines.Harness.duration;
              delay = Icc_core.Runner.Fixed_delay delta;
              crashed;
              trace;
            }
          in
          match proto with
          | `Pbft -> Icc_baselines.Pbft.run scenario
          | `Hotstuff -> Icc_baselines.Hotstuff.run scenario
          | `Tendermint -> Icc_baselines.Tendermint.run scenario)
    in
    Option.iter (Printf.printf "trace written     %s\n") trace_file;
    Printf.printf "blocks committed  %d (%.2f/s)\n"
      r.Icc_baselines.Harness.blocks_committed
      r.Icc_baselines.Harness.blocks_per_s;
    Printf.printf "latency           %.4f s\n" r.Icc_baselines.Harness.mean_latency;
    Printf.printf "safety            %b\n" r.Icc_baselines.Harness.safety_ok
  in
  Cmd.v
    (Cmd.info "baselines" ~doc:"Run a baseline protocol (PBFT / HotStuff / Tendermint).")
    Term.(const exec $ proto $ n $ duration $ delta $ crashed $ trace_arg)

(* ---------------------------------------------------------------- keys *)

let keys_cmd =
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Parties.") in
  let exec n =
    let t = Icc_crypto.Keygen.max_corrupt ~n in
    let rng = Icc_sim.Rng.create 7 in
    let system, keys =
      Icc_crypto.Keygen.generate ~n ~t (fun () -> Icc_sim.Rng.bits61 rng)
    in
    Printf.printf "n = %d parties, tolerating t = %d corruptions\n" n t;
    Printf.printf "notarization/finalization quorum h = n - t = %d\n" (n - t);
    Printf.printf "beacon threshold t + 1 = %d\n\n" (t + 1);
    (* walk the beacon chain for a few rounds *)
    let msg round prev = Icc_core.Types.beacon_text ~round ~prev_sigma:prev in
    let rec beacon round prev =
      if round <= 5 then begin
        let m = msg round prev in
        let shares =
          List.filteri (fun i _ -> i <= t)
            (List.map
               (fun k ->
                 Icc_crypto.Threshold_vuf.sign_share
                   system.Icc_crypto.Keygen.beacon
                   k.Icc_crypto.Keygen.beacon_key m)
               keys)
        in
        match
          Icc_crypto.Threshold_vuf.combine system.Icc_crypto.Keygen.beacon m
            shares
        with
        | Some sig_ ->
            let rand = Icc_crypto.Threshold_vuf.randomness m sig_ in
            Printf.printf "beacon round %d: randomness %s\n" round
              (String.sub (Icc_crypto.Sha256.to_hex rand) 0 16);
            beacon (round + 1)
              (string_of_int sig_.Icc_crypto.Threshold_vuf.sigma)
        | None -> print_endline "combine failed"
      end
    in
    beacon 1 Icc_core.Types.beacon_genesis
  in
  Cmd.v
    (Cmd.info "keys" ~doc:"Demonstrate key generation and the random beacon.")
    Term.(const exec $ n)

let () =
  let doc = "Internet Computer Consensus (PODC 2022) reproduction" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "icc" ~doc)
          [ run_cmd; table1_cmd; exp_cmd; baselines_cmd; keys_cmd ]))
