(* icc — command-line front end for the ICC reproduction.

   Subcommands:
     run         one ICC0/ICC1/ICC2 simulation with explicit parameters
     table1      regenerate the paper's Table 1 (experiment E1)
     exp         regenerate any single experiment E1..E8
     baselines   run PBFT / chained HotStuff on a matching network
     analyze     replay a --trace JSONL dump offline (monitor + reports)
     profile     run with the self-profiler on and print the breakdown
     keys        demonstrate key generation and the random beacon *)

open Cmdliner

let protocol_conv =
  Arg.enum [ ("icc0", `Icc0); ("icc1", `Icc1); ("icc2", `Icc2) ]

(* --corrupt tags: crash/lazy are Party behaviors; the Byzantine ones
   compile to Adversary directives (the strategies live there now). *)
let behavior_conv =
  Arg.enum
    [
      ("crashed", `Crashed);
      ("equivocator", `Equivocator);
      ("stealthy", `Stealthy);
      ("lazy", `Lazy);
    ]

let split_corrupt corrupt =
  List.fold_left
    (fun (bs, ds) (id, tag) ->
      match tag with
      | `Crashed -> ((id, Icc_core.Party.crashed) :: bs, ds)
      | `Lazy -> ((id, Icc_core.Party.lazy_participant) :: bs, ds)
      | `Equivocator -> (bs, [ Icc_sim.Adversary.equivocate ~noisy:true id ] :: ds)
      | `Stealthy ->
          ( bs,
            [
              Icc_sim.Adversary.equivocate id;
              Icc_sim.Adversary.withhold ~notar:true ~final:true id;
            ]
            :: ds ))
    ([], []) corrupt
  |> fun (bs, ds) -> (bs, List.concat ds)

(* --trace FILE: subscribe a JSONL sink to a fresh trace bus and hand the
   bus to the scenario; one JSON object per line, schema in DESIGN.md. *)
let with_trace_file path f =
  match path with
  | None -> f None
  | Some path ->
      let oc =
        try open_out path
        with Sys_error msg ->
          Printf.eprintf "icc: cannot open trace file: %s\n" msg;
          exit 1
      in
      let trace = Icc_sim.Trace.create () in
      Icc_sim.Trace.subscribe trace (fun ~time ev ->
          output_string oc (Icc_sim.Trace.to_json ~time ev);
          output_char oc '\n');
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f (Some trace))

let trace_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a JSONL event log of the run to $(docv).")

(* Shared monitor flags (run / baselines). *)
let monitor_arg =
  Arg.(value & flag
       & info [ "monitor" ]
           ~doc:"Attach the online invariant monitor to the run's trace bus.")

let monitor_abort_arg =
  Arg.(value & flag
       & info [ "monitor-abort" ]
           ~doc:"With $(b,--monitor): abort the run at the first fatal \
                 safety violation (exit 2) instead of reporting at the end.")

let stall_factor_arg =
  Arg.(value & opt float 8.
       & info [ "stall-factor" ] ~docv:"X"
           ~doc:"Monitor watchdog: flag a round stage stalled after \
                 $(docv) times the delay bound without progress.")

let monitor_config ~on ~abort ~stall_factor ~delta =
  if on then
    Some
      (Icc_sim.Monitor.default_config ~stall_factor
         ~abort_on_violation:abort ~delta ())
  else None

let print_monitor_report = function
  | None -> ()
  | Some m -> print_endline (Icc_sim.Monitor.report m)

let monitor_ok = function
  | None -> true
  | Some m -> Icc_sim.Monitor.ok m

(* Abort carries the event-indexed diagnosis; turn it into a clean exit. *)
let with_monitor_abort f =
  try f ()
  with Icc_sim.Monitor.Abort v ->
    Printf.eprintf "icc: run aborted by invariant monitor:\n  %s\n"
      (Icc_sim.Monitor.violation_message v);
    exit 2

(* Shared nemesis flags (run / baselines): a fault script assembled from
   the quick link flags, an optional JSON script file, and crash cycles. *)
let drop_arg =
  Arg.(value & opt (some float) None
       & info [ "drop" ] ~docv:"P"
           ~doc:"Nemesis: drop every message with probability $(docv).")

let dup_arg =
  Arg.(value & opt (some float) None
       & info [ "dup" ] ~docv:"P"
           ~doc:"Nemesis: deliver a delayed duplicate with probability \
                 $(docv).")

let reorder_arg =
  Arg.(value & opt (some float) None
       & info [ "reorder" ] ~docv:"P"
           ~doc:"Nemesis: add a reordering extra delay with probability \
                 $(docv).")

let flap_arg =
  Arg.(value & opt (some float) None
       & info [ "flap" ] ~docv:"PERIOD"
           ~doc:"Nemesis: flap every link with this period in seconds (up \
                 for the first half of each period).")

let nemesis_file_arg =
  Arg.(value & opt (some string) None
       & info [ "nemesis" ] ~docv:"FILE"
           ~doc:"JSON nemesis script: an array of objects selected by their \
                 \"fault\" field (drop, dup, reorder, flap, partition, \
                 crash, recover); see DESIGN.md §3.3.")

let crash_cycle_arg =
  Arg.(value & opt_all (t3 ~sep:':' int float float) []
       & info [ "crash-cycle" ] ~docv:"ID:DOWN:UP"
           ~doc:"Nemesis: crash party $(i,ID) at time $(i,DOWN), recover it \
                 at $(i,UP).  Repeatable.")

let read_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "icc: cannot open nemesis script: %s\n" msg;
      exit 1
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let nemesis_script ~drop ~dup ~reorder ~flap ~file ~cycles =
  let base =
    match file with
    | None -> []
    | Some path -> (
        match Icc_sim.Fault.script_of_json (read_file path) with
        | Ok s -> s
        | Error msg ->
            Printf.eprintf "icc: bad nemesis script %s: %s\n" path msg;
            exit 1)
  in
  let opt f = function None -> [] | Some v -> [ f v ] in
  let script =
    base
    @ opt (fun p -> Icc_sim.Fault.drop p) drop
    @ opt (fun p -> Icc_sim.Fault.duplicate p) dup
    @ opt (fun p -> Icc_sim.Fault.reorder p) reorder
    @ opt (fun period -> Icc_sim.Fault.flap ~period ()) flap
    @ List.concat_map
        (fun (party, down, up) ->
          Icc_sim.Fault.crash_recover ~party ~down ~up)
        cycles
  in
  match script with [] -> None | s -> Some s

(* Shared adversary flags (run / baselines): a Byzantine strategy script
   assembled from an optional JSON file and the quick shorthands. *)
let adversary_file_arg =
  Arg.(value & opt (some string) None
       & info [ "adversary" ] ~docv:"FILE"
           ~doc:"JSON adversary script: an array of objects selected by \
                 their \"adversary\" field (equivocate, withhold, censor, \
                 delay, crash, straggle); see DESIGN.md §3.8.")

let equivocate_arg =
  Arg.(value & opt_all int []
       & info [ "equivocate" ] ~docv:"ID"
           ~doc:"Adversary: party $(docv) proposes conflicting blocks and \
                 shares promiscuously (noisy equivocation).  Repeatable.")

let withhold_arg =
  Arg.(value & opt_all int []
       & info [ "withhold" ] ~docv:"ID"
           ~doc:"Adversary: party $(docv) withholds all its shares \
                 (beacon, notarization, finalization).  Repeatable.")

let corrupt_adaptive_arg =
  Arg.(value & opt (some int) None
       & info [ "corrupt-adaptive" ] ~docv:"K"
           ~doc:"Adversary: adaptively corrupt up to $(docv) round leaders \
                 (beacon rank 0) as noisy equivocators.")

let adversary_script ~file ~equivocate ~withhold ~adaptive ~extra =
  let base =
    match file with
    | None -> []
    | Some path -> (
        match Icc_sim.Adversary.script_of_json (read_file path) with
        | Ok s -> s
        | Error msg ->
            Printf.eprintf "icc: bad adversary script %s: %s\n" path msg;
            exit 1)
  in
  let script =
    base
    @ List.map (fun id -> Icc_sim.Adversary.equivocate ~noisy:true id) equivocate
    @ List.map (fun id -> Icc_sim.Adversary.withhold id) withhold
    @ (match adaptive with
      | None -> []
      | Some k ->
          [
            Icc_sim.Adversary.adaptive ~rank:0 ~max_corrupt:k
              (Icc_sim.Adversary.Equivocate { noisy = true });
          ])
    @ extra
  in
  match script with [] -> None | s -> Some s

(* ------------------------------------------------------------------ run *)

let run_cmd =
  let protocol =
    Arg.(value & opt protocol_conv `Icc0 & info [ "protocol"; "p" ]
           ~docv:"PROTO" ~doc:"Protocol variant: icc0, icc1 or icc2.")
  in
  let n = Arg.(value & opt int 7 & info [ "n" ] ~doc:"Number of parties.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let duration =
    Arg.(value & opt float 30. & info [ "duration"; "d" ]
           ~doc:"Simulated seconds.")
  in
  let delta =
    Arg.(value & opt float 0.05 & info [ "delta" ]
           ~doc:"One-way network delay in seconds (fixed model).")
  in
  let wan =
    Arg.(value & flag & info [ "wan" ]
           ~doc:"Use the paper's WAN model (RTT ~ U[6,110] ms) instead of a \
                 fixed delay.")
  in
  let epsilon =
    Arg.(value & opt float 0.2 & info [ "epsilon" ]
           ~doc:"Governor epsilon of the Delta_ntry delay function.")
  in
  let delta_bnd =
    Arg.(value & opt float 1.0 & info [ "delta-bnd" ]
           ~doc:"Partial-synchrony bound Delta_bnd.")
  in
  let load =
    Arg.(value & opt (some float) None & info [ "load" ]
           ~doc:"Client commands per second (1 KB each).")
  in
  let block_size =
    Arg.(value & opt (some int) None & info [ "block-size" ]
           ~doc:"Fixed block payload in bytes (overrides --load).")
  in
  let corrupt =
    Arg.(value & opt_all (pair ~sep:':' int behavior_conv) []
         & info [ "corrupt" ] ~docv:"ID:BEHAVIOR"
             ~doc:"Corrupt party, e.g. 2:crashed, 3:equivocator, 4:stealthy, \
                   5:lazy.  Repeatable.")
  in
  let async_until =
    Arg.(value & opt float 0. & info [ "async-until" ]
           ~doc:"Adversarial asynchrony until this simulated time.")
  in
  let fanout =
    Arg.(value & opt int 4 & info [ "fanout" ] ~doc:"Gossip fanout (icc1).")
  in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Enable the self-profiler (spans + registry counters). \
                   With $(b,--trace), the run's aggregate lands on the bus \
                   as $(i,prof-span)/$(i,prof-counter) events before \
                   run-end; $(b,icc analyze) renders them.")
  in
  let no_batch_verify =
    Arg.(value & flag
         & info [ "no-batch-verify" ]
             ~doc:"Disable random-linear-combination batch verification \
                   (on by default).  A \xc2\xa73.5-style toggle: verdicts \
                   and traces are identical either way, only speed \
                   changes.")
  in
  let parallel_verify =
    Arg.(value & opt int 0
         & info [ "parallel-verify" ] ~docv:"WORKERS"
             ~doc:"Fan verification batches out over this many worker \
                   domains (OCaml 5.x builds; 0, the default, keeps \
                   verification on the calling domain; 4.14 builds always \
                   run sequentially).  Trace-preserving: chunks join in \
                   deterministic input order.")
  in
  let exec protocol n seed duration delta wan epsilon delta_bnd load block_size
      corrupt async_until fanout profile drop dup reorder flap nemesis_file
      crash_cycles adversary_file equivocate withhold corrupt_adaptive
      trace_file monitor monitor_abort stall_factor no_batch_verify
      parallel_verify =
    Icc_obs.Profile.set_enabled profile;
    (* §3.5 toggles: flip while still single-domain (snapshot-at-spawn). *)
    Icc_crypto.Batch.set_batch_verify (not no_batch_verify);
    if parallel_verify > 0 then begin
      Icc_crypto.Batch.set_parallel_verify true;
      Icc_obs.Dpool.set_workers parallel_verify
    end;
    let nemesis =
      nemesis_script ~drop ~dup ~reorder ~flap ~file:nemesis_file
        ~cycles:crash_cycles
    in
    let behaviors, corrupt_directives = split_corrupt corrupt in
    let adversary =
      adversary_script ~file:adversary_file ~equivocate ~withhold
        ~adaptive:corrupt_adaptive ~extra:corrupt_directives
    in
    let r =
      with_monitor_abort (fun () ->
          with_trace_file trace_file (fun trace ->
              let scenario =
                {
                  (Icc_core.Runner.default_scenario ~n ~seed) with
                  Icc_core.Runner.duration;
                  nemesis;
                  adversary;
                  delay =
                    (if wan then
                       Icc_core.Runner.Wan { rtt_lo = 0.006; rtt_hi = 0.110 }
                     else Icc_core.Runner.Fixed_delay delta);
                  epsilon;
                  delta_bnd;
                  behaviors;
                  async_until;
                  workload =
                    (match (block_size, load) with
                    | Some size, _ -> Icc_core.Runner.Fixed_block_size size
                    | None, Some rate ->
                        Icc_core.Runner.Load
                          { rate_per_s = rate; cmd_size = 1024 }
                    | None, None -> Icc_core.Runner.No_load);
                  trace;
                  monitor =
                    monitor_config ~on:monitor ~abort:monitor_abort
                      ~stall_factor ~delta:delta_bnd;
                }
              in
              match protocol with
              | `Icc0 -> Icc_core.Runner.run scenario
              | `Icc1 -> Icc_gossip.Icc1.run ~fanout scenario
              | `Icc2 -> Icc_rbc.Icc2.run scenario))
    in
    Option.iter (Printf.printf "trace written       %s\n") trace_file;
    Printf.printf "rounds decided      %d\n" r.Icc_core.Runner.rounds_decided;
    Printf.printf "directly finalized  %d\n"
      (List.length r.Icc_core.Runner.directly_finalized);
    Printf.printf "block rate          %.3f blocks/s\n"
      r.Icc_core.Runner.blocks_per_s;
    Printf.printf "commit latency      %.4f s\n" r.Icc_core.Runner.mean_latency;
    Printf.printf "commands committed  %d\n"
      r.Icc_core.Runner.commands_committed;
    Printf.printf "total traffic       %.2f MB in %d msgs (max/party %.2f MB)\n"
      (float_of_int (Icc_sim.Metrics.total_bytes r.Icc_core.Runner.metrics)
      /. 1e6)
      (Icc_sim.Metrics.total_msgs r.Icc_core.Runner.metrics)
      (float_of_int
         (Icc_sim.Metrics.max_bytes_per_party r.Icc_core.Runner.metrics)
      /. 1e6);
    (* Crypto-op totals from the registry-backed counters (satellite of
       the observability pass: `icc run` always ends with this line). *)
    let ops = List.filter (fun (_, v) -> v > 0) (Icc_crypto.Counters.snapshot ()) in
    if ops <> [] then
      Printf.printf "crypto ops          %s\n"
        (String.concat ", "
           (List.map (fun (name, v) -> Printf.sprintf "%s %d" name v) ops));
    print_monitor_report r.Icc_core.Runner.monitor;
    (* One-line verdict from the global Check oracles (and the online
       monitor when attached). *)
    let mark ok = if ok then "\xe2\x9c\x93" else "\xe2\x9c\x97" in
    let all_ok =
      r.Icc_core.Runner.p1_ok && r.Icc_core.Runner.p2_ok
      && r.Icc_core.Runner.prefix_ok
      && monitor_ok r.Icc_core.Runner.monitor
    in
    Printf.printf "safety: %s (P1 %s P2 %s prefix %s%s)\n"
      (if all_ok then "ok" else "VIOLATION")
      (mark r.Icc_core.Runner.p1_ok)
      (mark r.Icc_core.Runner.p2_ok)
      (mark r.Icc_core.Runner.prefix_ok)
      (match r.Icc_core.Runner.monitor with
      | None -> ""
      | Some m -> " monitor " ^ mark (Icc_sim.Monitor.ok m));
    if not all_ok then exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one ICC simulation.")
    Term.(
      const exec $ protocol $ n $ seed $ duration $ delta $ wan $ epsilon
      $ delta_bnd $ load $ block_size $ corrupt $ async_until $ fanout
      $ profile $ drop_arg $ dup_arg $ reorder_arg $ flap_arg
      $ nemesis_file_arg $ crash_cycle_arg $ adversary_file_arg
      $ equivocate_arg $ withhold_arg $ corrupt_adaptive_arg $ trace_arg
      $ monitor_arg $ monitor_abort_arg $ stall_factor_arg $ no_batch_verify
      $ parallel_verify)

(* ------------------------------------------------------------ exhibits *)

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps / shorter runs.")

let table1_cmd =
  let exec quick =
    Icc_experiments.Table1.print (Icc_experiments.Table1.run ~quick ())
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Regenerate the paper's Table 1 (experiment E1).")
    Term.(const exec $ quick_arg)

let exp_cmd =
  let which =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ID" ~doc:"Experiment id: e1..e11.")
  in
  let exec quick which =
    match String.lowercase_ascii which with
    | "e1" -> Icc_experiments.Table1.print (Icc_experiments.Table1.run ~quick ())
    | "e2" ->
        Icc_experiments.Msg_complexity.print
          (Icc_experiments.Msg_complexity.run ~quick ())
    | "e3" ->
        Icc_experiments.Round_complexity.print
          (Icc_experiments.Round_complexity.run ~quick ())
    | "e4" ->
        Icc_experiments.Throughput_latency.print
          (Icc_experiments.Throughput_latency.run ~quick ())
    | "e5" ->
        Icc_experiments.Leader_bottleneck.print
          (Icc_experiments.Leader_bottleneck.run ~quick ())
    | "e6" ->
        Icc_experiments.Baselines_compare.print
          (Icc_experiments.Baselines_compare.run ~quick ())
    | "e7" ->
        Icc_experiments.Robustness.print (Icc_experiments.Robustness.run ~quick ())
    | "e8" ->
        Icc_experiments.Asynchrony.print (Icc_experiments.Asynchrony.run ~quick ())
    | "e9" ->
        Icc_experiments.Adaptivity.print (Icc_experiments.Adaptivity.run ~quick ())
    | "e10" -> Icc_experiments.Scale.print (Icc_experiments.Scale.run ~quick ())
    | "e11" ->
        Icc_experiments.Adversary_sweep.print
          (Icc_experiments.Adversary_sweep.run ~quick ())
    | other -> Printf.eprintf "unknown experiment %s (expected e1..e11)\n" other
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Regenerate one experiment (e1..e11).")
    Term.(const exec $ quick_arg $ which)

(* ----------------------------------------------------------- baselines *)

let baselines_cmd =
  let proto =
    Arg.(value & opt (enum [ ("pbft", `Pbft); ("hotstuff", `Hotstuff); ("tendermint", `Tendermint) ]) `Pbft
         & info [ "protocol"; "p" ] ~doc:"pbft, hotstuff or tendermint.")
  in
  let n = Arg.(value & opt int 7 & info [ "n" ] ~doc:"Replicas.") in
  let duration =
    Arg.(value & opt float 30. & info [ "duration"; "d" ] ~doc:"Seconds.")
  in
  let delta =
    Arg.(value & opt float 0.05 & info [ "delta" ] ~doc:"One-way delay.")
  in
  let crashed =
    Arg.(value & opt_all int [] & info [ "crash" ] ~doc:"Crashed replica id.")
  in
  let exec proto n duration delta crashed drop adversary_file withhold
      trace_file monitor monitor_abort stall_factor =
    let nemesis =
      nemesis_script ~drop ~dup:None ~reorder:None ~flap:None ~file:None
        ~cycles:[]
    in
    let adversary =
      adversary_script ~file:adversary_file ~equivocate:[] ~withhold
        ~adaptive:None ~extra:[]
    in
    let r =
      with_monitor_abort (fun () ->
          with_trace_file trace_file (fun trace ->
              let scenario =
                {
                  (Icc_baselines.Harness.default_scenario ~n ~seed:42) with
                  Icc_baselines.Harness.duration;
                  delay = Icc_core.Runner.Fixed_delay delta;
                  crashed;
                  nemesis;
                  adversary;
                  trace;
                  monitor =
                    (* The watchdog scales by the view-change timeout: the
                       baselines' own recovery bound. *)
                    monitor_config ~on:monitor ~abort:monitor_abort
                      ~stall_factor ~delta:1.0;
                }
              in
              match proto with
              | `Pbft -> Icc_baselines.Pbft.run scenario
              | `Hotstuff -> Icc_baselines.Hotstuff.run scenario
              | `Tendermint -> Icc_baselines.Tendermint.run scenario))
    in
    Option.iter (Printf.printf "trace written     %s\n") trace_file;
    Printf.printf "blocks committed  %d (%.2f/s)\n"
      r.Icc_baselines.Harness.blocks_committed
      r.Icc_baselines.Harness.blocks_per_s;
    Printf.printf "latency           %.4f s\n" r.Icc_baselines.Harness.mean_latency;
    print_monitor_report r.Icc_baselines.Harness.monitor;
    Printf.printf "safety            %b\n" r.Icc_baselines.Harness.safety_ok;
    if
      not
        (r.Icc_baselines.Harness.safety_ok
        && monitor_ok r.Icc_baselines.Harness.monitor)
    then exit 1
  in
  Cmd.v
    (Cmd.info "baselines" ~doc:"Run a baseline protocol (PBFT / HotStuff / Tendermint).")
    Term.(
      const exec $ proto $ n $ duration $ delta $ crashed $ drop_arg
      $ adversary_file_arg $ withhold_arg $ trace_arg $ monitor_arg
      $ monitor_abort_arg $ stall_factor_arg)

(* ------------------------------------------------------------- analyze *)

let analyze_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"TRACE"
             ~doc:"JSONL trace file written by $(b,--trace).")
  in
  let round =
    Arg.(value & opt (some int) None
         & info [ "round" ] ~docv:"K"
             ~doc:"Walk the causal critical path of round $(docv) (default: \
                   the last decided round).")
  in
  let delta =
    Arg.(value & opt float 1.0
         & info [ "delta" ] ~docv:"SECONDS"
             ~doc:"Delay bound the offline watchdog scales by.")
  in
  let exec file round delta stall_factor =
    let config = Icc_sim.Monitor.default_config ~stall_factor ~delta () in
    let report =
      try Icc_experiments.Analyze.analyze ~config ?round file
      with Sys_error msg ->
        Printf.eprintf "icc: %s\n" msg;
        exit 1
    in
    Icc_experiments.Analyze.print report;
    if not (Icc_experiments.Analyze.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Replay a --trace JSONL dump: re-check invariants offline and \
             report round pipelines, bandwidth and critical paths.")
    Term.(const exec $ file $ round $ delta $ stall_factor_arg)

(* ------------------------------------------------------------- profile *)

(* `icc profile`: one run with the self-profiler on, rendered as a
   per-phase breakdown, the registry counters, per-round and per-party
   self-time attribution, and optionally a folded-stack export and a JSON
   dump.  Everything here is host wall-clock observation — the simulated
   run itself is the same deterministic run `icc run` performs. *)

let profile_cmd =
  let protocol =
    Arg.(value & opt protocol_conv `Icc0 & info [ "protocol"; "p" ]
           ~docv:"PROTO" ~doc:"Protocol variant: icc0, icc1 or icc2.")
  in
  let n = Arg.(value & opt int 7 & info [ "n" ] ~doc:"Number of parties.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let duration =
    Arg.(value & opt float 30. & info [ "duration"; "d" ]
           ~doc:"Simulated seconds.")
  in
  let delta =
    Arg.(value & opt float 0.05 & info [ "delta" ]
           ~doc:"One-way network delay in seconds (fixed model).")
  in
  let wan =
    Arg.(value & flag & info [ "wan" ]
           ~doc:"Use the paper's WAN model instead of a fixed delay.")
  in
  let fanout =
    Arg.(value & opt int 4 & info [ "fanout" ] ~doc:"Gossip fanout (icc1).")
  in
  let folded =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:"Write the folded-stack profile (one \"path \
                   self-microseconds\" line per distinct span stack) to                    $(docv) — flamegraph.pl / inferno input.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the whole profile as one JSON object on stdout \
                   instead of the tables.")
  in
  let top =
    Arg.(value & opt int 12
         & info [ "top" ] ~docv:"K"
             ~doc:"Rows shown in the breakdown table (the rest is summed \
                   into an (other) row).  0 means all.")
  in
  let prometheus =
    Arg.(value & opt (some string) None
         & info [ "prometheus" ] ~docv:"FILE"
             ~doc:"Write the end-of-run registry in Prometheus text \
                   exposition format to $(docv) ($(i,-) for stdout).")
  in
  let json_escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let us s = int_of_float ((s *. 1e6) +. 0.5) in
  let exec protocol n seed duration delta wan fanout monitor folded json top
      prometheus =
    Icc_obs.Registry.reset ();
    Icc_obs.Profile.reset ();
    Icc_obs.Profile.set_enabled true;
    let t0 = Icc_obs.Profile.now () in
    let r =
      let scenario =
        {
          (Icc_core.Runner.default_scenario ~n ~seed) with
          Icc_core.Runner.duration;
          delay =
            (if wan then Icc_core.Runner.Wan { rtt_lo = 0.006; rtt_hi = 0.110 }
             else Icc_core.Runner.Fixed_delay delta);
          monitor =
            monitor_config ~on:monitor ~abort:false ~stall_factor:8.
              ~delta:1.0;
        }
      in
      match protocol with
      | `Icc0 -> Icc_core.Runner.run scenario
      | `Icc1 -> Icc_gossip.Icc1.run ~fanout scenario
      | `Icc2 -> Icc_rbc.Icc2.run scenario
    in
    let wall = Icc_obs.Profile.now () -. t0 in
    Icc_obs.Profile.set_enabled false;
    let stats = Icc_obs.Profile.stats () in
    let counters =
      List.filter (fun (_, v) -> v > 0) (Icc_obs.Registry.counters ())
    in
    let by_self =
      List.sort
        (fun a b ->
          match
            Float.compare b.Icc_obs.Profile.sp_self_s a.Icc_obs.Profile.sp_self_s
          with
          | 0 ->
              String.compare a.Icc_obs.Profile.sp_name b.Icc_obs.Profile.sp_name
          | c -> c)
        stats
    in
    let total_self =
      List.fold_left
        (fun acc st -> acc +. st.Icc_obs.Profile.sp_self_s)
        0. stats
    in
    (match folded with
    | None -> ()
    | Some path -> (
        match open_out path with
        | oc ->
            output_string oc (Icc_obs.Profile.folded_lines ());
            close_out oc
        | exception Sys_error msg ->
            Printf.eprintf "icc: cannot open folded output: %s\n" msg;
            exit 1));
    (match prometheus with
    | None -> ()
    | Some "-" -> print_string (Icc_obs.Registry.to_prometheus ())
    | Some path -> (
        match open_out path with
        | oc ->
            output_string oc (Icc_obs.Registry.to_prometheus ());
            close_out oc
        | exception Sys_error msg ->
            Printf.eprintf "icc: cannot open prometheus output: %s\n" msg;
            exit 1));
    if json then begin
      let b = Buffer.create 4096 in
      let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
      let proto_name =
        match protocol with `Icc0 -> "icc0" | `Icc1 -> "icc1" | `Icc2 -> "icc2"
      in
      p {|{"protocol":"%s","n":%d,"seed":%d,"duration":%g,"wall_s":%.6f|}
        proto_name n seed duration wall;
      p {|,"rounds_decided":%d|} r.Icc_core.Runner.rounds_decided;
      p {|,"spans":[|};
      List.iteri
        (fun i st ->
          if i > 0 then p ",";
          p {|{"name":"%s","count":%d,"total_us":%d,"self_us":%d}|}
            (json_escape st.Icc_obs.Profile.sp_name)
            st.Icc_obs.Profile.sp_count
            (us st.Icc_obs.Profile.sp_total_s)
            (us st.Icc_obs.Profile.sp_self_s))
        by_self;
      p {|],"counters":[|};
      List.iteri
        (fun i (name, v) ->
          if i > 0 then p ",";
          p {|{"name":"%s","value":%d}|} (json_escape name) v)
        counters;
      let contexts key_name rows =
        List.iteri
          (fun i (key, cells) ->
            if i > 0 then p ",";
            p {|{"%s":%d,"spans":[|} key_name key;
            List.iteri
              (fun j (name, self) ->
                if j > 0 then p ",";
                p {|{"name":"%s","self_us":%d}|} (json_escape name) (us self))
              cells;
            p "]}")
          rows
      in
      p {|],"by_round":[|};
      contexts "round" (Icc_obs.Profile.by_round ());
      p {|],"by_party":[|};
      contexts "party" (Icc_obs.Profile.by_party ());
      p "]}";
      print_endline (Buffer.contents b)
    end
    else begin
      let proto_name =
        match protocol with `Icc0 -> "icc0" | `Icc1 -> "icc1" | `Icc2 -> "icc2"
      in
      Printf.printf
        "profile: %s n=%d seed=%d duration=%g (wall %.3f s, %d rounds decided)\n"
        proto_name n seed duration wall r.Icc_core.Runner.rounds_decided;
      print_newline ();
      Printf.printf "phase breakdown (self-time descending):\n";
      Printf.printf "  %-28s %10s %12s %12s %6s\n" "span" "count" "total-us"
        "self-us" "share";
      let shown, rest =
        if top <= 0 || List.length by_self <= top then (by_self, [])
        else (List.filteri (fun i _ -> i < top) by_self,
              List.filteri (fun i _ -> i >= top) by_self)
      in
      let share self =
        if total_self = 0. then 0. else 100. *. self /. total_self
      in
      List.iter
        (fun st ->
          Printf.printf "  %-28s %10d %12d %12d %5.1f%%\n"
            st.Icc_obs.Profile.sp_name st.Icc_obs.Profile.sp_count
            (us st.Icc_obs.Profile.sp_total_s)
            (us st.Icc_obs.Profile.sp_self_s)
            (share st.Icc_obs.Profile.sp_self_s))
        shown;
      if rest <> [] then begin
        let cnt = List.fold_left (fun a st -> a + st.Icc_obs.Profile.sp_count) 0 rest in
        let tot = List.fold_left (fun a st -> a +. st.Icc_obs.Profile.sp_total_s) 0. rest in
        let slf = List.fold_left (fun a st -> a +. st.Icc_obs.Profile.sp_self_s) 0. rest in
        Printf.printf "  %-28s %10d %12d %12d %5.1f%%\n"
          (Printf.sprintf "(other x%d)" (List.length rest))
          cnt (us tot) (us slf) (share slf)
      end;
      if counters <> [] then begin
        print_newline ();
        Printf.printf "counters:\n";
        List.iter
          (fun (name, v) -> Printf.printf "  %-28s %12d\n" name v)
          counters
      end;
      (* Per-round self-µs heatmap: one row per round context, bar scaled
         to the busiest round. *)
      let rounds = Icc_obs.Profile.by_round () in
      if rounds <> [] then begin
        let row_total cells =
          List.fold_left (fun a (_, s) -> a +. s) 0. cells
        in
        let peak =
          List.fold_left (fun a (_, cells) -> Float.max a (row_total cells)) 0.
            rounds
        in
        print_newline ();
        Printf.printf "per-round self-us (0 = outside any round):\n";
        List.iter
          (fun (round, cells) ->
            let t = row_total cells in
            let bar =
              if peak = 0. then 0
              else int_of_float (40. *. t /. peak +. 0.5)
            in
            let topname =
              match
                List.sort
                  (fun (n1, s1) (n2, s2) ->
                    match Float.compare s2 s1 with
                    | 0 -> String.compare n1 n2
                    | c -> c)
                  cells
              with
              | (name, _) :: _ -> name
              | [] -> "-"
            in
            Printf.printf "  %5d %10d  %-40s %s\n" round (us t)
              (String.make bar '#') topname)
          rounds
      end;
      let parties = Icc_obs.Profile.by_party () in
      if parties <> [] then begin
        print_newline ();
        Printf.printf "per-party self-us (0 = outside any party):\n";
        List.iter
          (fun (party, cells) ->
            let t = List.fold_left (fun a (_, s) -> a +. s) 0. cells in
            Printf.printf "  %5d %10d\n" party (us t))
          parties
      end;
      match folded with
      | None -> ()
      | Some path ->
          print_newline ();
          Printf.printf "folded stacks written to %s\n" path
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run one simulation with the self-profiler enabled and print              the per-phase wall-clock breakdown (plus folded-stack and              JSON exports).")
    Term.(
      const exec $ protocol $ n $ seed $ duration $ delta $ wan $ fanout
      $ monitor_arg $ folded $ json $ top $ prometheus)

(* ---------------------------------------------------------------- lint *)

let lint_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit findings as flat JSON objects (one per line), matching \
                the trace-bus format.")
  in
  let paths =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:"Directories or .cmt/.cmti files to lint (default: \
                _build/default/lib, falling back to lib).")
  in
  let deps =
    Arg.(
      value & opt_all string []
      & info [ "deps" ] ~docv:"DIR"
          ~doc:"Extra artifact directories contributing type definitions \
                without being linted themselves.")
  in
  let inventory =
    Arg.(
      value & flag
      & info [ "inventory" ]
          ~doc:"Also print the cross-module inventory of top-level mutable \
                state with its synchronization status (the D5 surface of \
                the domain-safety analysis).")
  in
  let exec json inventory paths deps =
    let args =
      (if json then [ "--json" ] else [])
      @ (if inventory then [ "--inventory" ] else [])
      @ List.concat_map (fun d -> [ "--deps"; d ]) deps
      @ paths
    in
    match Icc_lint.Driver.config_of_args args with
    | Error msg ->
        prerr_endline msg;
        exit 2
    | Ok config -> exit (Icc_lint.Driver.run config)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Check the compiled libraries' typed ASTs for determinism \
             hazards (polymorphic compare, hash-order leaks, wall-clock \
             reads, catch-all handlers) and domain-safety hazards \
             (unsynchronized mutable state reachable from the parallel \
             [@icc.domain_entry] closure).")
    Term.(const exec $ json $ inventory $ paths $ deps)

(* ---------------------------------------------------------------- keys *)

let keys_cmd =
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Parties.") in
  let exec n =
    let t = Icc_crypto.Keygen.max_corrupt ~n in
    let rng = Icc_sim.Rng.create 7 in
    let system, keys =
      Icc_crypto.Keygen.generate ~n ~t (fun () -> Icc_sim.Rng.bits61 rng)
    in
    Printf.printf "n = %d parties, tolerating t = %d corruptions\n" n t;
    Printf.printf "notarization/finalization quorum h = n - t = %d\n" (n - t);
    Printf.printf "beacon threshold t + 1 = %d\n\n" (t + 1);
    (* walk the beacon chain for a few rounds *)
    let msg round prev = Icc_core.Types.beacon_text ~round ~prev_sigma:prev in
    let rec beacon round prev =
      if round <= 5 then begin
        let m = msg round prev in
        let shares =
          List.filteri (fun i _ -> i <= t)
            (List.map
               (fun k ->
                 Icc_crypto.Threshold_vuf.sign_share
                   system.Icc_crypto.Keygen.beacon
                   k.Icc_crypto.Keygen.beacon_key m)
               keys)
        in
        match
          Icc_crypto.Threshold_vuf.combine system.Icc_crypto.Keygen.beacon m
            shares
        with
        | Some sig_ ->
            let rand = Icc_crypto.Threshold_vuf.randomness m sig_ in
            Printf.printf "beacon round %d: randomness %s\n" round
              (String.sub (Icc_crypto.Sha256.to_hex rand) 0 16);
            beacon (round + 1)
              (string_of_int sig_.Icc_crypto.Threshold_vuf.sigma)
        | None -> print_endline "combine failed"
      end
    in
    beacon 1 Icc_core.Types.beacon_genesis
  in
  Cmd.v
    (Cmd.info "keys" ~doc:"Demonstrate key generation and the random beacon.")
    Term.(const exec $ n)

let () =
  let doc = "Internet Computer Consensus (PODC 2022) reproduction" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "icc" ~doc)
          [
            run_cmd;
            table1_cmd;
            exp_cmd;
            baselines_cmd;
            analyze_cmd;
            profile_cmd;
            lint_cmd;
            keys_cmd;
          ]))
