(* Standalone linter binary, kept dependency-light so the [@lint] dune
   alias only has to build Icc_lint and this file:

     icc_lint [--json] [--deps DIR]... [PATH|CMT]...

   Paths default to the built lib tree; see [icc lint --help] for the
   cmdliner-wrapped variant. *)

let () =
  match Icc_lint.Driver.config_of_args (List.tl (Array.to_list Sys.argv)) with
  | Error msg ->
      prerr_endline ("icc-lint: " ^ msg);
      prerr_endline "usage: icc_lint [--json] [--deps DIR]... [PATH|CMT]...";
      exit 2
  | Ok config -> exit (Icc_lint.Driver.run config)
