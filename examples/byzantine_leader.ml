(* Robust consensus under attack (paper §1 "Robust consensus").

   Party 2 is a full Byzantine equivocator: whenever it proposes, it signs
   two conflicting blocks and delivers one to each half of the network; it
   also notarization- and finalization-shares every block it sees.  Party 4
   is crashed.  That is t = 2 corruptions with n = 7 — the maximum the
   protocol tolerates.

   Expected: safety holds (no two finalized blocks per round, consistent
   outputs), and throughput degrades only in the rounds where a corrupt
   party wins the leader rank (finishing in O(delta_bnd) instead of
   O(delta)) — the graceful degradation the paper contrasts with
   fragile-optimism designs [15].

     dune exec examples/byzantine_leader.exe *)

let () =
  let run ~behaviors ~adversary label =
    let scenario =
      {
        (Icc_core.Runner.default_scenario ~n:7 ~seed:2024) with
        Icc_core.Runner.t_corrupt = 2;
        duration = 60.;
        delay = Icc_core.Runner.Fixed_delay 0.04;
        epsilon = 0.15;
        delta_bnd = 0.4;
        behaviors;
        adversary;
      }
    in
    let r = Icc_core.Runner.run scenario in
    Printf.printf "%-28s rounds=%-4d blocks/s=%.2f latency=%.3fs safety=%b P1=%b\n"
      label r.rounds_decided r.blocks_per_s r.mean_latency r.safety_ok r.p1_ok;
    r
  in
  print_endline "=== ICC0 under Byzantine attack (n=7, t=2) ===";
  let fault_free = run ~behaviors:[] ~adversary:None "fault-free" in
  let attacked =
    run
      ~behaviors:[ (4, Icc_core.Party.crashed) ]
      ~adversary:(Some [ Icc_sim.Adversary.equivocate ~noisy:true 2 ])
      "equivocator + crash"
  in
  let ratio = attacked.blocks_per_s /. fault_free.blocks_per_s in
  Printf.printf
    "\nthroughput under attack: %.0f%% of fault-free — degraded, never zero\n"
    (100. *. ratio);
  Printf.printf
    "every honest party still commits one identical chain: %b\n"
    (attacked.safety_ok
    && List.for_all
         (fun (_, c) -> List.length c = attacked.rounds_decided)
         attacked.outputs);

  (* Show the per-proposer composition of the committed chain: corrupt
     parties win the leader rank ~2/7 of rounds but their (possibly empty
     or split) proposals still land or are replaced by higher ranks. *)
  (match attacked.outputs with
  | (_, chain) :: _ ->
      let per_proposer = Array.make 8 0 in
      List.iter
        (fun (b : Icc_core.Block.t) ->
          per_proposer.(b.Icc_core.Block.proposer) <-
            per_proposer.(b.Icc_core.Block.proposer) + 1)
        chain;
      print_endline "\ncommitted blocks per proposer:";
      for p = 1 to 7 do
        let tag =
          match p with
          | 2 -> " (equivocator)"
          | 4 -> " (crashed)"
          | _ -> ""
        in
        Printf.printf "  P%d%-15s %d\n" p tag per_proposer.(p)
      done
  | [] -> ())
