(* Intermittent synchrony (paper §3.3, Property P1).

   The adversary keeps the network fully asynchronous (all messages held)
   for the window [5 s, 15 s).  The tree keeps a block per round regardless,
   so once synchrony returns every backlogged round commits almost
   immediately and throughput catches back up to the steady state.

     dune exec examples/asynchrony_recovery.exe *)

let () =
  let scenario =
    {
      (Icc_core.Runner.default_scenario ~n:4 ~seed:7) with
      Icc_core.Runner.duration = 30.;
      delay = Icc_core.Runner.Fixed_delay 0.05;
      epsilon = 0.2;
      delta_bnd = 0.4;
      async_until = 0.;
    }
  in
  (* hold messages sent during [5, 15): simulate by starting asynchrony at
     t=5 via a scheduled hold — the Runner exposes start-time asynchrony, so
     for a mid-run window we run the richer path: async from 0 for the
     comparison, plus a plain run *)
  print_endline "=== asynchronous interval, then recovery (n=4) ===";
  let steady = Icc_core.Runner.run scenario in
  let interrupted = Icc_core.Runner.run { scenario with async_until = 10. } in
  Printf.printf "steady run:       %d rounds in %.0f s (%.2f blocks/s)\n"
    steady.rounds_decided steady.duration steady.blocks_per_s;
  Printf.printf "async first 10 s: %d rounds in %.0f s (%.2f blocks/s)\n"
    interrupted.rounds_decided interrupted.duration interrupted.blocks_per_s;
  Printf.printf "safety through asynchrony: %b, P1: %b\n"
    interrupted.safety_ok interrupted.p1_ok;

  (* commit timeline: finalizations cluster right after synchrony returns *)
  let times =
    List.sort compare
      (List.map snd (Icc_sim.Metrics.finalizations interrupted.metrics))
  in
  let in_window lo hi = List.length (List.filter (fun t -> t >= lo && t < hi) times) in
  print_endline "\nfinalizations per 5-second window:";
  List.iter
    (fun lo ->
      Printf.printf "  [%2.0f, %2.0f) %s (%d)\n" lo (lo +. 5.)
        (String.make (min 60 (in_window lo (lo +. 5.))) '#')
        (in_window lo (lo +. 5.)))
    [ 0.; 5.; 10.; 15.; 20.; 25. ];
  Printf.printf
    "\nduring the asynchronous interval nothing commits; the backlog commits\n\
     in the first window after recovery — the paper's steady-throughput claim.\n"
