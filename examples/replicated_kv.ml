(* A replicated key-value store over ICC0 (state machine replication,
   paper §1): clients submit set/del/increment operations; every replica
   folds the committed chain into its own store; all stores agree.

     dune exec examples/replicated_kv.exe *)

let () =
  let scenario =
    {
      (Icc_core.Runner.default_scenario ~n:4 ~seed:123) with
      Icc_core.Runner.duration = 20.;
      delay = Icc_core.Runner.Fixed_delay 0.05;
      epsilon = 0.2;
      delta_bnd = 0.4;
      adversary = Some [ Icc_sim.Adversary.equivocate ~noisy:true 3 ];
    }
  in
  print_endline "=== replicated KV store over ICC0 (party 3 Byzantine) ===";
  let r = Icc_smr.Workload.run_kv scenario ~rate_per_s:50. ~cmd_size:128 in
  Printf.printf "consensus: %d rounds, %d commands committed, safety=%b\n"
    r.consensus.Icc_core.Runner.rounds_decided
    r.consensus.Icc_core.Runner.commands_committed
    r.consensus.Icc_core.Runner.safety_ok;
  Printf.printf "replica states agree: %b\n\n" r.states_agree;
  List.iter
    (fun (id, replica) ->
      Printf.printf "replica %d: applied %d ops, %d live keys, state %s\n" id
        (Icc_smr.Kv_store.applied replica.Icc_smr.Replica.store)
        (Icc_smr.Kv_store.size replica.Icc_smr.Replica.store)
        (String.sub (Icc_smr.Replica.state_digest replica) 0 16))
    r.replicas;
  (match r.replicas with
  | (_, replica) :: _ ->
      print_endline "\nsample keys on replica 1:";
      List.iter
        (fun k ->
          match Icc_smr.Kv_store.get replica.Icc_smr.Replica.store k with
          | Some v -> Printf.printf "  %s = %s\n" k v
          | None -> Printf.printf "  %s = (absent)\n" k)
        [ "k0"; "k1"; "k7"; "k33" ]
  | [] -> ())
